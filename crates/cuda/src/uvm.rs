//! The CUDA managed-memory (UVM) driver model.
//!
//! Managed memory on Grace Hopper (paper §2.3) keeps pages in the system
//! page table while CPU-resident and in the GPU page table while
//! GPU-resident, migrating on demand:
//!
//! * **GPU first touch** maps pages directly into GPU memory at 2 MiB
//!   block granularity — this is why GPU-side initialization is *fast*
//!   under managed memory (§5.1.2) while it is slow for system memory;
//! * **GPU access to CPU-resident pages** raises a replayable GPU page
//!   fault; the driver migrates the whole 2 MiB VA block (plus
//!   speculatively prefetched neighbours) to HBM;
//! * under memory pressure the driver **evicts** least-recently-used
//!   blocks to CPU memory;
//! * a fault that could only be served by evicting blocks of the *same
//!   allocation* (self-eviction, i.e. guaranteed thrash) is instead served
//!   by a **remote mapping** over NVLink-C2C — this reproduces the
//!   behaviour the paper observed for the 34-qubit Qiskit run (§7): after
//!   the initial eviction phase no further migration happens and all data
//!   is accessed over the link, unless explicit prefetching intervenes;
//! * **CPU access to GPU-resident pages** retrieves them back.
//!
//! Residency is tracked at system-page granularity in the OS page table
//! (which matches the paper's observation that *evicted* managed pages
//! land on the CPU at the system page size), while all driver operations
//! — fault service, migration, eviction, first touch — work on 2 MiB VA
//! blocks, matching the managed-memory granularities of Table 1.

use gh_mem::clock::Ns;
use gh_mem::link::Direction;
use gh_mem::params::CostParams;
use gh_mem::phys::Node;
use gh_os::VaRange;
use gh_units::{widen, Bytes, Pages, Vpn};
use std::collections::VecDeque;

use crate::kernel::tlb_key_sys;
use crate::runtime::Runtime;

/// Driver-side state for managed memory.
#[derive(Debug, Default)]
pub struct UvmState {
    /// 2 MiB blocks holding at least one GPU-resident managed page, in
    /// LRU order (front = coldest).
    lru: VecDeque<u64>,
    /// Blocks migrated in during the current kernel (sequential-prefetch
    /// detection).
    pub(crate) migrated_this_kernel: Vec<u64>,
    /// Statistics: blocks served by remote mapping instead of migration.
    pub(crate) remote_fallbacks: u64,
    /// Statistics: eviction events.
    pub(crate) evictions: u64,
    /// Thrash detection: remote fallbacks per allocation (keyed by the
    /// allocation's base address). `BTreeMap` so any future iteration is
    /// deterministic — hash order here would leak into pin decisions and
    /// thus into RunReports.
    pub(crate) fallback_counts: std::collections::BTreeMap<u64, u32>,
    /// Allocations the driver has pinned CPU-side after repeated
    /// thrashing (the `uvm_perf_thrashing` behaviour: all access remote
    /// until an explicit prefetch pulls data back).
    pub(crate) pinned_cpu: std::collections::HashSet<u64>,
}

impl UvmState {
    /// Fresh driver state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `block` most-recently-used (inserting it if absent).
    pub(crate) fn touch_lru(&mut self, block: u64) {
        if let Some(pos) = self.lru.iter().position(|&b| b == block) {
            self.lru.remove(pos);
        }
        self.lru.push_back(block);
    }

    fn drop_block(&mut self, block: u64) {
        if let Some(pos) = self.lru.iter().position(|&b| b == block) {
            self.lru.remove(pos);
        }
    }

    /// Forgets all blocks overlapping `range` (allocation freed).
    pub(crate) fn forget_range(&mut self, range: VaRange) {
        self.lru
            .retain(|&b| b * BLOCK >= range.end() || (b + 1) * BLOCK <= range.addr);
        self.fallback_counts.remove(&range.addr);
        self.pinned_cpu.remove(&range.addr);
    }

    /// Whether the driver pinned this allocation to CPU memory.
    pub fn is_pinned_cpu(&self, range: VaRange) -> bool {
        self.pinned_cpu.contains(&range.addr)
    }

    /// Number of eviction events so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of remote-mapping fallbacks so far.
    pub fn remote_fallbacks(&self) -> u64 {
        self.remote_fallbacks
    }
}

/// UVM VA-block size (2 MiB), fixed by the driver design.
pub const BLOCK: u64 = 2 * 1024 * 1024;

/// Remote fallbacks tolerated per allocation before the driver pins it to
/// CPU memory (thrashing prevention).
pub const PIN_AFTER_FALLBACKS: u32 = 3;

/// Block index containing `addr`.
pub fn block_of(addr: u64) -> u64 {
    addr / BLOCK
}

/// The VA range of a block, clipped to `clip`.
pub fn block_range(block: u64, clip: VaRange) -> VaRange {
    let lo = (block * BLOCK).max(clip.addr);
    let hi = ((block + 1) * BLOCK).min(clip.end());
    VaRange {
        addr: lo,
        len: hi.saturating_sub(lo),
    }
}

impl Runtime {
    /// Moves one system page to `dst`, updating frames and shooting down
    /// the GPU TLB. Panics if the destination node cannot hold the page —
    /// callers must have made room first.
    pub(crate) fn move_page(&mut self, vpn: Vpn, dst: Node) {
        let page = self.os.system_pt.page();
        let frame = self
            .phys
            .alloc(dst, page.bytes())
            .expect("destination node full: caller must evict first"); // gh-audit: allow(no-unwrap-in-lib) -- caller evicts before migrating; a full destination is a logic error
        let old = self.os.system_pt.remap(vpn, dst, frame);
        self.phys.release(old.node, page.bytes());
        self.migrated_pages = self.migrated_pages.saturating_add(1);
        self.gpu_tlb.invalidate(tlb_key_sys(vpn));
    }

    /// GPU first-touch of a managed block: map every unpopulated page of
    /// `block ∩ buf` straight into GPU memory (2 MiB-granularity PTE work,
    /// cheap). Under pressure this *may* evict LRU blocks — including
    /// blocks of the same allocation, since first-touch population is not
    /// a migration loop. Pages that still don't fit are placed on the CPU.
    /// Returns (cost, pages placed on GPU, pages placed on CPU).
    pub(crate) fn uvm_first_touch_block(
        &mut self,
        block: u64,
        buf_range: VaRange,
    ) -> (Ns, u64, u64) {
        let clip = block_range(block, buf_range);
        if clip.len == 0 {
            return (0, 0, 0);
        }
        let page = self.os.system_pt.page();
        let vpns: Vec<Vpn> = self
            .os
            .system_pt
            .vpn_range(clip.addr, clip.len)
            .into_iter()
            .filter(|&v| !self.os.system_pt.is_populated(v))
            .collect();
        if vpns.is_empty() {
            return (0, 0, 0);
        }
        let mut cost = self.params.uvm_gpu_first_touch_per_page;
        let (mut on_gpu, mut on_cpu) = (0u64, 0u64);
        for vpn in vpns {
            let frame = match self.phys.alloc(Node::Gpu, page.bytes()) {
                Ok(f) => Some(f),
                Err(_) => {
                    // Try to make room by evicting the LRU block (any
                    // allocation, this one included).
                    let (evict_cost, freed) = self.uvm_evict_lru(page.bytes(), None, Some(block));
                    cost = cost.saturating_add(evict_cost);
                    if freed >= page.bytes() {
                        self.phys.alloc(Node::Gpu, page.bytes()).ok()
                    } else {
                        None
                    }
                }
            };
            match frame {
                Some(f) => {
                    self.os.system_pt.populate(vpn, Node::Gpu, f);
                    on_gpu += 1;
                }
                None => {
                    let f = self
                        .phys
                        .alloc(Node::Cpu, page.bytes())
                        .expect("both tiers exhausted"); // gh-audit: allow(no-unwrap-in-lib) -- both tiers exhausted means the experiment exceeds machine memory
                    self.os.system_pt.populate(vpn, Node::Cpu, f);
                    on_cpu += 1;
                    cost = cost.saturating_add(self.params.cpu_fault_fixed / 2);
                }
            }
        }
        if on_gpu > 0 {
            self.uvm.touch_lru(block);
            cost = cost.saturating_add(CostParams::transfer_ns(
                Pages::new(on_gpu) * page,
                self.params.hbm_bw,
            ));
        }
        if self.session.bus.is_on() && on_gpu > 0 {
            self.session.bus.emit(gh_trace::Event::Migration {
                engine: gh_trace::Engine::FirstTouch,
                dir: gh_trace::Dir::H2D,
                pages: on_gpu,
                bytes: (Pages::new(on_gpu) * page).get(),
            });
            self.session.bus.count("uvm.pages_first_touch", on_gpu);
        }
        (cost, on_gpu, on_cpu)
    }

    /// Fault-driven migration of a managed block to the GPU. The caller
    /// has already charged the fault-batch cost. Returns
    /// `(cost, pages_migrated)`; `pages_migrated == 0` means the driver
    /// fell back to a remote mapping (self-eviction refused).
    pub(crate) fn uvm_migrate_block_in(&mut self, block: u64, buf_range: VaRange) -> (Ns, u64) {
        let clip = block_range(block, buf_range);
        let page = self.os.system_pt.page();
        let vpns = self.os.system_pt.vpn_range(clip.addr, clip.len);
        let cpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Cpu);
        if cpu_pages.is_empty() {
            return (0, 0);
        }
        let bytes = Pages::new(widen(cpu_pages.len())) * page;
        let mut cost: Ns = 0;
        if self.phys.free(Node::Gpu) < bytes {
            // Make room, but never by evicting this same allocation: that
            // would be guaranteed thrash, and the GH200 driver instead
            // leaves the data CPU-resident for coherent remote access.
            let (evict_cost, freed) = self.uvm_evict_lru(
                bytes - self.phys.free(Node::Gpu),
                Some(buf_range),
                Some(block),
            );
            cost = cost.saturating_add(evict_cost);
            if freed + self.phys.free(Node::Gpu) < bytes && self.phys.free(Node::Gpu) < bytes {
                self.uvm.remote_fallbacks += 1;
                // Thrash detection (uvm_perf_thrashing): after repeated
                // refused migrations the driver evicts the allocation's
                // GPU-resident pages and pins it CPU-side — from then on
                // every access is a coherent C2C remote access, which is
                // what the paper observed for the 34-qubit managed run.
                let n = self.uvm.fallback_counts.entry(buf_range.addr).or_insert(0);
                *n += 1;
                if *n >= PIN_AFTER_FALLBACKS {
                    cost = cost.saturating_add(self.uvm_pin_cpu(buf_range));
                }
                self.session.bus.count("uvm.remote_fallbacks", 1);
                return (cost, 0);
            }
        }
        for &vpn in &cpu_pages {
            self.move_page(vpn, Node::Gpu);
        }
        self.uvm.touch_lru(block);
        self.uvm.migrated_this_kernel.push(block);
        cost = cost.saturating_add(
            self.params.uvm_migration_fixed + self.link.bulk(bytes, Direction::H2D),
        );
        let pages = widen(cpu_pages.len());
        self.session.perf.count(gh_perf::Ctr::MigratedPages, pages);
        if self.session.bus.is_on() {
            self.session.bus.emit(gh_trace::Event::Migration {
                engine: gh_trace::Engine::Fault,
                dir: gh_trace::Dir::H2D,
                pages,
                bytes: bytes.get(),
            });
            self.session.bus.count("uvm.pages_migrated_in", pages);
            self.session.bus.count("uvm.bytes_migrated_in", bytes.get());
            self.session.bus.observe("migration.bytes", bytes.get());
        }
        (cost, pages)
    }

    /// Evicts LRU managed blocks until `needed` bytes are free on the GPU
    /// or no eligible victim remains. `exclude` protects an allocation
    /// from self-eviction; `skip_block` protects the block currently
    /// being serviced. Returns (cost, bytes freed).
    pub(crate) fn uvm_evict_lru(
        &mut self,
        needed: Bytes,
        exclude: Option<VaRange>,
        skip_block: Option<u64>,
    ) -> (Ns, Bytes) {
        let page = self.os.system_pt.page();
        let mut cost: Ns = 0;
        let mut freed = Bytes::ZERO;
        // Scan from the cold end; collect victims first to avoid borrowing
        // issues while mutating.
        let mut idx = 0;
        while freed < needed && idx < self.uvm.lru.len() {
            let block = self.uvm.lru[idx];
            let in_excluded = exclude.is_some_and(|r| {
                block_range(
                    block,
                    VaRange {
                        addr: 0,
                        len: u64::MAX,
                    },
                )
                .intersect(&r)
                .is_some()
            });
            if in_excluded || Some(block) == skip_block {
                idx += 1;
                continue;
            }
            let clip = VaRange {
                addr: block * BLOCK,
                len: BLOCK,
            };
            let vpns = self.os.system_pt.vpn_range(clip.addr, clip.len);
            let gpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Gpu);
            let pages = widen(gpu_pages.len());
            let bytes = Pages::new(pages) * page;
            for vpn in gpu_pages {
                self.move_page(vpn, Node::Cpu);
            }
            self.uvm.drop_block(block);
            self.uvm.evictions = self.uvm.evictions.saturating_add(1);
            freed = freed.saturating_add(bytes);
            cost = cost
                .saturating_add(self.params.evict_fixed + self.link.bulk(bytes, Direction::D2H));
            self.session.perf.count(gh_perf::Ctr::MigratedPages, pages);
            if self.session.bus.is_on() {
                self.session.bus.emit(gh_trace::Event::Evict {
                    pages,
                    bytes: bytes.get(),
                });
                self.session.bus.emit(gh_trace::Event::Migration {
                    engine: gh_trace::Engine::Evict,
                    dir: gh_trace::Dir::D2H,
                    pages,
                    bytes: bytes.get(),
                });
                self.session.bus.count("uvm.evictions", 1);
                self.session.bus.count("uvm.pages_migrated_out", pages);
                self.session
                    .bus
                    .count("uvm.bytes_migrated_out", bytes.get());
                self.session.bus.observe("migration.bytes", bytes.get());
            }
            // idx unchanged: removal shifted the deque.
        }
        (cost, freed)
    }

    /// Evicts every GPU-resident page of the allocation to the CPU and
    /// marks it pinned (thrashing prevention). Returns the cost.
    pub(crate) fn uvm_pin_cpu(&mut self, buf_range: VaRange) -> Ns {
        let page = self.os.system_pt.page();
        let vpns = self.os.system_pt.vpn_range(buf_range.addr, buf_range.len);
        let gpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Gpu);
        let pages = widen(gpu_pages.len());
        let bytes = Pages::new(pages) * page;
        for vpn in gpu_pages {
            self.move_page(vpn, Node::Cpu);
        }
        let first = block_of(buf_range.addr);
        let last = block_of(buf_range.end().saturating_sub(1));
        for b in first..=last {
            self.uvm.drop_block(b);
        }
        self.uvm.pinned_cpu.insert(buf_range.addr);
        self.uvm.evictions = self.uvm.evictions.saturating_add(1);
        self.session.perf.count(gh_perf::Ctr::MigratedPages, pages);
        if self.session.bus.is_on() {
            self.session.bus.emit(gh_trace::Event::Pin {
                va: buf_range.addr,
                bytes: bytes.get(),
            });
            self.session.bus.count("uvm.cpu_pins", 1);
            self.session.bus.count("uvm.evictions", 1);
            self.session.bus.count("uvm.pages_migrated_out", pages);
            self.session
                .bus
                .count("uvm.bytes_migrated_out", bytes.get());
        }
        self.params.evict_fixed + self.link.bulk(bytes, Direction::D2H)
    }

    /// CPU touched GPU-resident managed pages: retrieve the covered
    /// blocks back to CPU memory (fault batch + D2H transfer).
    pub(crate) fn uvm_retrieve_to_cpu(&mut self, chunk: VaRange) -> Ns {
        let page = self.os.system_pt.page();
        let vpns = self.os.system_pt.vpn_range(chunk.addr, chunk.len);
        let gpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Gpu);
        if gpu_pages.is_empty() {
            return 0;
        }
        let pages = widen(gpu_pages.len());
        let bytes = Pages::new(pages) * page;
        let blocks: std::collections::BTreeSet<u64> = gpu_pages
            .iter()
            .map(|&v| block_of(v.get() * page.get()))
            .collect();
        for vpn in gpu_pages {
            self.move_page(vpn, Node::Cpu);
        }
        for b in &blocks {
            self.uvm.drop_block(*b);
        }
        self.session.perf.count(gh_perf::Ctr::MigratedPages, pages);
        if self.session.bus.is_on() {
            self.session.bus.emit(gh_trace::Event::Migration {
                engine: gh_trace::Engine::Fault,
                dir: gh_trace::Dir::D2H,
                pages,
                bytes: bytes.get(),
            });
            self.session.bus.count("uvm.pages_migrated_out", pages);
            self.session
                .bus
                .count("uvm.bytes_migrated_out", bytes.get());
            self.session.bus.observe("migration.bytes", bytes.get());
        }
        self.params.uvm_fault_batch * widen(blocks.len()) + self.link.bulk(bytes, Direction::D2H)
    }

    /// `cudaMemPrefetchAsync` body: bulk migration toward `to`, block by
    /// block, ticking the clock incrementally so the profiler records the
    /// ramp. Eviction (including self-eviction — the user asked for this
    /// placement) makes room as needed. Returns total cost.
    pub(crate) fn uvm_prefetch_range(&mut self, span: VaRange, to: Node) -> Ns {
        // An explicit prefetch overrides thrashing prevention: the user
        // asked for this placement.
        if to == Node::Gpu {
            if let Some(vma) = self.os.vma_at(span.addr) {
                let addr = vma.range.addr;
                self.uvm.pinned_cpu.remove(&addr);
                self.uvm.fallback_counts.remove(&addr);
            }
        }
        let page = self.os.system_pt.page();
        let mut total = self.params.prefetch_fixed;
        self.tick(self.params.prefetch_fixed);
        let first = block_of(span.addr);
        let last = block_of(span.end() - 1);
        for block in first..=last {
            let clip = block_range(block, span);
            if clip.len == 0 {
                continue;
            }
            let vpns = self.os.system_pt.vpn_range(clip.addr, clip.len);
            let mut dt: Ns = 0;
            match to {
                Node::Gpu => {
                    let cpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Cpu);
                    if cpu_pages.is_empty() {
                        continue;
                    }
                    let bytes = Pages::new(widen(cpu_pages.len())) * page;
                    if self.phys.free(Node::Gpu) < bytes {
                        let (c, freed) = self.uvm_evict_lru(
                            bytes - self.phys.free(Node::Gpu),
                            None,
                            Some(block),
                        );
                        dt = dt.saturating_add(c);
                        if freed + self.phys.free(Node::Gpu) < bytes
                            && self.phys.free(Node::Gpu) < bytes
                        {
                            // GPU genuinely full (e.g. balloon): skip.
                            self.tick(dt);
                            total = total.saturating_add(dt);
                            continue;
                        }
                    }
                    for &vpn in &cpu_pages {
                        self.move_page(vpn, Node::Gpu);
                    }
                    self.uvm.touch_lru(block);
                    dt = dt.saturating_add(self.link.bulk(bytes, Direction::H2D));
                    self.session
                        .perf
                        .count(gh_perf::Ctr::MigratedPages, widen(cpu_pages.len()));
                    if self.session.bus.is_on() {
                        let pages = widen(cpu_pages.len());
                        self.session.bus.emit(gh_trace::Event::Migration {
                            engine: gh_trace::Engine::Prefetch,
                            dir: gh_trace::Dir::H2D,
                            pages,
                            bytes: bytes.get(),
                        });
                        self.session.bus.count("uvm.pages_migrated_in", pages);
                        self.session.bus.count("uvm.bytes_migrated_in", bytes.get());
                        self.session.bus.observe("migration.bytes", bytes.get());
                    }
                }
                Node::Cpu => {
                    let gpu_pages = self.os.system_pt.vpns_on_node(vpns, Node::Gpu);
                    if gpu_pages.is_empty() {
                        continue;
                    }
                    let pages = widen(gpu_pages.len());
                    let bytes = Pages::new(pages) * page;
                    for &vpn in &gpu_pages {
                        self.move_page(vpn, Node::Cpu);
                    }
                    self.uvm.drop_block(block);
                    dt = dt.saturating_add(self.link.bulk(bytes, Direction::D2H));
                    self.session.perf.count(gh_perf::Ctr::MigratedPages, pages);
                    if self.session.bus.is_on() {
                        self.session.bus.emit(gh_trace::Event::Migration {
                            engine: gh_trace::Engine::Prefetch,
                            dir: gh_trace::Dir::D2H,
                            pages,
                            bytes: bytes.get(),
                        });
                        self.session.bus.count("uvm.pages_migrated_out", pages);
                        self.session
                            .bus
                            .count("uvm.bytes_migrated_out", bytes.get());
                        self.session.bus.observe("migration.bytes", bytes.get());
                    }
                }
            }
            self.tick(dt);
            total = total.saturating_add(dt);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeOptions;
    use gh_mem::params::MIB;

    fn rt() -> Runtime {
        Runtime::new(CostParams::default(), RuntimeOptions::default())
    }

    #[test]
    fn block_math() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(BLOCK - 1), 0);
        assert_eq!(block_of(BLOCK), 1);
        let clip = VaRange {
            addr: BLOCK / 2,
            len: BLOCK,
        };
        let r0 = block_range(0, clip);
        assert_eq!(r0.addr, BLOCK / 2);
        assert_eq!(r0.len, BLOCK / 2);
        let r1 = block_range(1, clip);
        assert_eq!(r1.addr, BLOCK);
        assert_eq!(r1.len, BLOCK / 2);
    }

    #[test]
    fn lru_touch_moves_to_back() {
        let mut s = UvmState::new();
        s.touch_lru(1);
        s.touch_lru(2);
        s.touch_lru(1);
        assert_eq!(s.lru, VecDeque::from(vec![2, 1]));
    }

    #[test]
    fn first_touch_places_block_on_gpu() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(4 * MIB), "m");
        let block = block_of(b.range.addr);
        let before = r.gpu_used();
        let (cost, on_gpu, on_cpu) = r.uvm_first_touch_block(block, b.range);
        assert!(cost > 0);
        assert_eq!(on_cpu, 0);
        assert_eq!(on_gpu * r.params().system_page_size, 2 * MIB);
        assert_eq!(r.gpu_used() - before, 2 * MIB);
        // Idempotent: already-populated pages are skipped.
        let (_, again, _) = r.uvm_first_touch_block(block, b.range);
        assert_eq!(again, 0);
    }

    #[test]
    fn migrate_in_moves_cpu_pages() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(2 * MIB), "m");
        r.cpu_write(&b, 0, 2 * MIB); // CPU-resident now
        assert_eq!(r.rss(), 2 * MIB);
        let block = block_of(b.range.addr);
        let (cost, pages) = r.uvm_migrate_block_in(block, b.range);
        assert!(cost > 0);
        assert_eq!(pages * r.params().system_page_size, 2 * MIB);
        assert_eq!(r.rss(), 0);
    }

    #[test]
    fn eviction_allows_cross_allocation_victims() {
        let params = CostParams {
            gpu_mem_bytes: 8 * MIB,
            gpu_driver_baseline: 0,
            ..Default::default()
        };
        let mut r = Runtime::new(params, RuntimeOptions::default());
        // Fill the GPU with one managed allocation.
        let a = r.cuda_malloc_managed(Bytes::new(8 * MIB), "a");
        for blk in 0..4 {
            r.uvm_first_touch_block(block_of(a.range.addr) + blk, a.range);
        }
        assert!(r.gpu_free() < MIB);
        // A second allocation faulting in may evict `a`'s blocks.
        let b = r.cuda_malloc_managed(Bytes::new(2 * MIB), "b");
        r.cpu_write(&b, 0, 2 * MIB);
        let (_, pages) = r.uvm_migrate_block_in(block_of(b.range.addr), b.range);
        assert!(pages > 0, "cross-allocation eviction must succeed");
        assert!(r.uvm.evictions() > 0);
    }

    #[test]
    fn self_eviction_is_refused_with_remote_fallback() {
        // The natural-oversubscription shape (paper §7, 34-qubit case):
        // one allocation larger than the GPU. First-touch fills the GPU
        // (evicting its own cold blocks — allowed for population), but
        // fault-driven migration refuses self-eviction and falls back to
        // remote mapping.
        let params = CostParams {
            gpu_mem_bytes: 8 * MIB,
            gpu_driver_baseline: 0,
            ..Default::default()
        };
        let mut r = Runtime::new(params, RuntimeOptions::default());
        let a = r.cuda_malloc_managed(Bytes::new(16 * MIB), "a");
        let first = block_of(a.range.addr);
        for blk in 0..8 {
            r.uvm_first_touch_block(first + blk, a.range);
        }
        // GPU holds at most 4 of the 8 blocks; at least one early block
        // was displaced to the CPU.
        let vpns = r.os().system_pt.vpn_range(a.range.addr, 2 * MIB);
        let cpu_pages = r.os().system_pt.count_resident_in(vpns, Node::Cpu);
        assert!(cpu_pages.get() > 0, "early block must have been displaced");
        // Fault-driven migration of that block: every victim would be
        // `a` itself → refused.
        let (_, pages) = r.uvm_migrate_block_in(first, a.range);
        assert_eq!(pages, 0, "self-eviction refused → remote fallback");
        assert!(r.uvm.remote_fallbacks() >= 1);
    }

    #[test]
    fn retrieve_to_cpu_brings_pages_back() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(2 * MIB), "m");
        r.uvm_first_touch_block(block_of(b.range.addr), b.range);
        assert_eq!(r.rss(), 0);
        let cost = r.uvm_retrieve_to_cpu(b.range);
        assert!(cost >= r.params().uvm_fault_batch);
        assert_eq!(r.rss(), 2 * MIB);
        // Second retrieve is free (nothing GPU-resident).
        assert_eq!(r.uvm_retrieve_to_cpu(b.range), 0);
    }

    #[test]
    fn prefetch_to_gpu_then_cpu_roundtrip() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(6 * MIB), "m");
        r.cpu_write(&b, 0, 6 * MIB);
        let dt = r.prefetch(&b, 0, 6 * MIB, Node::Gpu);
        assert!(dt > 0);
        assert_eq!(r.rss(), 0);
        assert_eq!(r.gpu_used() - r.params().gpu_driver_baseline, 6 * MIB);
        r.prefetch(&b, 0, 6 * MIB, Node::Cpu);
        assert_eq!(r.rss(), 6 * MIB);
    }

    #[test]
    fn free_managed_reclaims_both_tiers() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(4 * MIB), "m");
        r.cpu_write(&b, 0, 2 * MIB);
        r.uvm_first_touch_block(block_of(b.range.addr) + 1, b.range);
        let gpu_before_free = r.gpu_used();
        assert!(gpu_before_free > r.params().gpu_driver_baseline);
        r.free(b);
        assert_eq!(r.rss(), 0);
        assert_eq!(r.gpu_used(), r.params().gpu_driver_baseline);
    }
}
