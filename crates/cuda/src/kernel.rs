//! Kernel launch recording: the access-metering API and the
//! access-counter migration driver.
//!
//! A [`Kernel`] is what the `<<<grid, block>>>` launch returns in this
//! model. The application's *real* compute runs outside (on `gh-par`);
//! the kernel object receives a description of the memory accesses the
//! compute performed — dense spans, strided segments, gathers — plus a
//! compute-work declaration, and turns them into:
//!
//! * translation activity (GPU TLB, ATS requests to the SMMU);
//! * first-touch fault service (system memory → expensive CPU-serviced
//!   ATS faults; managed memory → cheap GPU-block population);
//! * on-demand managed migration with speculative prefetch and eviction;
//! * remote cacheline traffic over NVLink-C2C with access counting;
//! * local HBM traffic;
//! * and finally a kernel duration: serial fault/migration time (charged
//!   as it happens, so the profiler sees ramps) plus
//!   `max(compute, memory)` for the pipelined part.
//!
//! At [`Kernel::finish`], the access-counter migration driver services up
//! to `counter_budget_per_kernel` pending notifications (paper §2.2.1),
//! migrating the *touched* CPU-resident pages of hot regions to the GPU —
//! the delayed migration behaviour of Fig 10.

use gh_mem::clock::Ns;
use gh_mem::link::Direction;
use gh_mem::params::CostParams;
use gh_mem::phys::Node;
use gh_mem::traffic::KernelTraffic;
use gh_os::VaRange;
use gh_units::{ns_from_f64, widen, Bytes, Lines, Pages, Vpn};

use crate::buffer::{BufKind, Buffer};
use crate::runtime::Runtime;
use crate::uvm::{block_of, block_range};

/// TLB key namespace for system-page-table translations.
pub(crate) fn tlb_key_sys(vpn: Vpn) -> Vpn {
    vpn
}

/// TLB key namespace for GPU-exclusive-page-table translations
/// (2 MiB-grain entries).
pub(crate) fn tlb_key_gpu(vpn: Vpn) -> Vpn {
    Vpn::new(vpn.get() | (1 << 63))
}

/// How many translation requests the GPU keeps in flight; ATS latency is
/// amortized by this factor for streaming access. The H100's many TBUs
/// and deep translation queues hide nearly all miss latency for regular
/// sweeps — the paper's Fig 9 shows the system version's *compute* time
/// to be page-size independent even with 16M live 4 KiB translations.
const XLAT_OUTSTANDING: u64 = 4096;

/// Spans at or below this many system pages take the reference walk:
/// run classification costs more than it saves, and both paths are
/// bit-identical anyway.
const BATCH_MIN_PAGES: u64 = 4;

/// Σ over the pages of `[x0, x1)` of `ceil(portion / line)`, portions
/// split on the `spt` page grid — the exact per-page cacheline count the
/// reference walk feeds the access counters, computed without walking.
fn lines_per_page_sum(x0: u64, x1: u64, spt: u64, line: u64) -> u64 {
    let first_page_end = (x0 / spt + 1) * spt;
    if x1 <= first_page_end {
        return (x1 - x0).div_ceil(line);
    }
    let mut sum = (first_page_end - x0).div_ceil(line);
    let full = (x1 - first_page_end) / spt;
    sum = sum.saturating_add(full.saturating_mul(spt / line));
    let tail = (x1 - first_page_end) % spt;
    if tail > 0 {
        sum = sum.saturating_add(tail.div_ceil(line));
    }
    sum
}

/// Per-buffer traffic attribution within one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferTraffic {
    /// Buffer tag (from allocation).
    pub tag: String,
    /// Remote NVLink-C2C bytes (read + write) this buffer caused.
    pub c2c: u64,
    /// Local HBM bytes this buffer caused.
    pub hbm: u64,
}

/// Result of a finished kernel.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Total kernel duration in virtual ns (launch overhead excluded,
    /// fault/migration service included).
    pub time: Ns,
    /// Traffic and event counts.
    pub traffic: KernelTraffic,
    /// Traffic attribution per buffer, sorted by remote bytes (the
    /// "top talkers" a tuning session looks for first).
    pub by_buffer: Vec<BufferTraffic>,
}

/// Per-buffer byte attribution accumulator (remote vs. local).
#[derive(Debug, Clone, Copy, Default)]
struct BufBytes {
    c2c: u64,
    hbm: u64,
}

/// An in-flight kernel recording.
#[derive(Debug)]
pub struct Kernel<'r> {
    rt: &'r mut Runtime,
    name: String,
    start: Ns,
    compute_units: u64,
    hbm_stream: u64,
    hbm_random: u64,
    c2c_read_lines: Lines,
    c2c_write_lines: Lines,
    c2c_read_lines_rand: Lines,
    c2c_write_lines_rand: Lines,
    xlat_misses: u64,
    t: KernelTraffic,
    /// Per-buffer byte attribution.
    by_buffer: std::collections::BTreeMap<u32, BufBytes>,
    /// GPU L2 model for irregular remote accesses: a line fetched once
    /// this kernel is served from cache on re-touch.
    l2: gh_mem::SetCache,
    finished: bool,
    /// Host-time profiling span covering launch → finish (gh-perf;
    /// no-op guard when profiling is off).
    _perf_span: gh_perf::SpanGuard,
}

impl<'r> Kernel<'r> {
    pub(crate) fn new(rt: &'r mut Runtime, name: &str) -> Self {
        rt.uvm.migrated_this_kernel.clear();
        let perf_span = rt.session.perf.span(&format!("kernel:{name}"));
        let start = rt.now();
        // The L2 model's slot array is megabytes; building it fresh per
        // launch dominated launch cost on the host. The batched path
        // revives the runtime's parked instance with an O(1) reset
        // (observationally identical to a fresh cache — see
        // `SetCache::reset`); the reference walk keeps the original
        // fresh allocation.
        let fresh_l2 = |rt: &Runtime| {
            gh_mem::SetCache::new(
                Bytes::new(rt.params.gpu_l2_bytes),
                Bytes::new(rt.params.gpu_cacheline),
                16,
            )
        };
        let l2 = if rt.session.opts.access_ref {
            fresh_l2(rt)
        } else if let Some(mut parked) = rt.l2_pool.take() {
            parked.reset();
            parked
        } else {
            fresh_l2(rt)
        };
        Self {
            rt,
            name: name.to_string(),
            start,
            compute_units: 0,
            hbm_stream: 0,
            hbm_random: 0,
            c2c_read_lines: Lines::ZERO,
            c2c_write_lines: Lines::ZERO,
            c2c_read_lines_rand: Lines::ZERO,
            c2c_write_lines_rand: Lines::ZERO,
            xlat_misses: 0,
            t: KernelTraffic::default(),
            by_buffer: std::collections::BTreeMap::new(),
            l2,
            finished: false,
            _perf_span: perf_span,
        }
    }

    /// Declares `units` of compute work (≈ simple arithmetic ops across
    /// all threads). Overlapped with memory traffic at finish.
    pub fn compute(&mut self, units: u64) {
        self.compute_units += units;
    }

    /// Dense streaming read of `[off, off+len)`.
    pub fn read(&mut self, buf: &Buffer, off: u64, len: u64) {
        self.span(buf, off, len, false, false);
    }

    /// Dense streaming write.
    pub fn write(&mut self, buf: &Buffer, off: u64, len: u64) {
        self.span(buf, off, len, true, false);
    }

    /// Strided access: `count` segments of `seg_len` bytes, `stride`
    /// bytes apart, starting at `off`. Random-access efficiency applies.
    pub fn read_strided(&mut self, buf: &Buffer, off: u64, seg_len: u64, stride: u64, count: u64) {
        self.strided(buf, off, seg_len, stride, count, false);
    }

    /// Strided write; see [`Kernel::read_strided`].
    pub fn write_strided(&mut self, buf: &Buffer, off: u64, seg_len: u64, stride: u64, count: u64) {
        self.strided(buf, off, seg_len, stride, count, true);
    }

    fn strided(
        &mut self,
        buf: &Buffer,
        off: u64,
        seg_len: u64,
        stride: u64,
        count: u64,
        write: bool,
    ) {
        assert!(stride > 0, "stride must be positive");
        for i in 0..count {
            self.span(buf, off + i * stride, seg_len, write, true);
        }
    }

    /// 2-D sub-grid read: `rows` rows of `row_bytes`, `pitch` bytes
    /// apart (the `cudaMemcpy2D` addressing convention). Dense within
    /// rows; the stride classifies it as irregular when rows are narrow
    /// relative to the pitch.
    pub fn read_2d(&mut self, buf: &Buffer, off: u64, row_bytes: Bytes, pitch: u64, rows: u64) {
        let row = row_bytes.get();
        if row == pitch {
            self.read(buf, off, row * rows);
        } else {
            self.read_strided(buf, off, row, pitch, rows);
        }
    }

    /// 2-D sub-grid write; see [`Kernel::read_2d`].
    pub fn write_2d(&mut self, buf: &Buffer, off: u64, row_bytes: Bytes, pitch: u64, rows: u64) {
        let row = row_bytes.get();
        if row == pitch {
            self.write(buf, off, row * rows);
        } else {
            self.write_strided(buf, off, row, pitch, rows);
        }
    }

    /// Irregular gather: reads `bytes_each` at each byte offset.
    pub fn gather_read<I: IntoIterator<Item = u64>>(
        &mut self,
        buf: &Buffer,
        offsets: I,
        bytes_each: Bytes,
    ) {
        for off in offsets {
            self.span(buf, off, bytes_each.get(), false, true);
        }
    }

    /// Irregular scatter: writes `bytes_each` at each byte offset.
    pub fn scatter_write<I: IntoIterator<Item = u64>>(
        &mut self,
        buf: &Buffer,
        offsets: I,
        bytes_each: Bytes,
    ) {
        for off in offsets {
            self.span(buf, off, bytes_each.get(), true, true);
        }
    }

    // ------------------------------------------------------------------

    fn span(&mut self, buf: &Buffer, off: u64, len: u64, write: bool, random: bool) {
        if len == 0 {
            return;
        }
        assert!(off + len <= buf.len(), "kernel access out of range");
        let span = buf.range.slice(off, len);
        let before = BufBytes {
            c2c: self.t.c2c_read + self.t.c2c_write,
            hbm: self.t.hbm_read + self.t.hbm_write,
        };
        match buf.kind {
            BufKind::Device => self.span_device(span, write, random),
            // In a unified pool every host-visible kind is just mapped
            // shared memory: no pinned-remote path, no UVM migration.
            BufKind::Pinned | BufKind::System | BufKind::Managed if self.rt.params.unified_pool => {
                self.span_system(buf.id(), buf.range, span, write, random)
            }
            BufKind::Pinned => self.span_pinned(span, write, random),
            BufKind::System => self.span_system(buf.id(), buf.range, span, write, random),
            BufKind::Managed => self.span_managed(buf.range, span, write, random),
        }
        let entry = self.by_buffer.entry(buf.id()).or_default();
        entry.c2c = entry
            .c2c
            .saturating_add((self.t.c2c_read + self.t.c2c_write).saturating_sub(before.c2c));
        entry.hbm = entry
            .hbm
            .saturating_add((self.t.hbm_read + self.t.hbm_write).saturating_sub(before.hbm));
    }

    fn account_local(&mut self, bytes: u64, write: bool, random: bool) {
        if random {
            self.hbm_random = self.hbm_random.saturating_add(bytes);
        } else {
            self.hbm_stream = self.hbm_stream.saturating_add(bytes);
        }
        if write {
            self.t.hbm_write = self.t.hbm_write.saturating_add(bytes);
        } else {
            self.t.hbm_read = self.t.hbm_read.saturating_add(bytes);
        }
        self.t.l1l2 = self.t.l1l2.saturating_add(bytes);
    }

    fn account_remote(&mut self, addr: u64, bytes: u64, write: bool, random: bool) {
        let line = self.rt.params.gpu_cacheline;
        // GPU L2 model for small irregular touches: a line fetched once
        // this kernel is served from cache on re-touch. Dense streams
        // bypass (no reuse; streaming loads are marked non-allocating).
        if random && bytes < 4 * line {
            let missed = self.l2.access_range(addr, Bytes::new(bytes.max(1)));
            if missed.is_zero() {
                self.t.l1l2 = self.t.l1l2.saturating_add(bytes); // pure cache hit
                return;
            }
            let miss_bytes = missed.bytes(Bytes::new(line)).get();
            match write {
                false => {
                    self.c2c_read_lines_rand += missed;
                    self.t.c2c_read = self.t.c2c_read.saturating_add(miss_bytes);
                }
                true => {
                    self.c2c_write_lines_rand += missed;
                    self.t.c2c_write = self.t.c2c_write.saturating_add(miss_bytes);
                }
            }
            self.t.l1l2 = self.t.l1l2.saturating_add(bytes);
            return;
        }
        let lines = Lines::new(bytes.div_ceil(line));
        match (write, random) {
            (false, false) => self.c2c_read_lines += lines,
            (false, true) => self.c2c_read_lines_rand += lines,
            (true, false) => self.c2c_write_lines += lines,
            (true, true) => self.c2c_write_lines_rand += lines,
        }
        let line_bytes = lines.bytes(Bytes::new(line)).get();
        if write {
            self.t.c2c_write = self.t.c2c_write.saturating_add(line_bytes);
        } else {
            self.t.c2c_read = self.t.c2c_read.saturating_add(line_bytes);
        }
        self.t.l1l2 = self.t.l1l2.saturating_add(bytes);
    }

    /// GPU TLB lookup; charges nothing directly, counts misses (latency is
    /// amortized at finish).
    fn translate(&mut self, key: Vpn) {
        if !self.rt.gpu_tlb.lookup(key) {
            self.rt.gpu_tlb.fill(key);
            self.xlat_misses = self.xlat_misses.saturating_add(1);
            self.t.tlb_misses = self.t.tlb_misses.saturating_add(1);
        }
    }

    /// Batched TLB walk over contiguous keys; charges miss counts per run.
    /// Bit-identical to per-key [`Kernel::translate`] calls in key order.
    fn translate_range(&mut self, keys: gh_units::VpnRange) {
        let misses = self.rt.gpu_tlb.lookup_range(keys);
        self.xlat_misses = self.xlat_misses.saturating_add(misses);
        self.t.tlb_misses = self.t.tlb_misses.saturating_add(misses);
    }

    /// TLB key range covering the system pages of `[a0, a1)`.
    fn sys_keys(&self, a0: u64, a1: u64) -> gh_units::VpnRange {
        let first = self.rt.os.system_pt.vpn(a0);
        let last = self.rt.os.system_pt.vpn(a1 - 1);
        gh_units::VpnRange::new(tlb_key_sys(first), Vpn::new(tlb_key_sys(last).get() + 1))
    }

    fn span_device(&mut self, span: VaRange, write: bool, random: bool) {
        let gp = self.rt.params.gpu_page_size;
        if self.rt.session.opts.access_ref {
            let mut addr = span.addr;
            while addr < span.end() {
                let page_end = (addr / gp + 1) * gp;
                let portion = page_end.min(span.end()) - addr;
                let vpn = Vpn::new(addr / gp);
                debug_assert!(
                    self.rt.gpu_pt.is_populated(vpn),
                    "access to unmapped device page"
                );
                self.translate(tlb_key_gpu(vpn));
                self.account_local(portion, write, random);
                addr = page_end;
            }
            return;
        }
        // Batched: one TLB walk per page (keys are contiguous because
        // `tlb_key_gpu` only sets a high namespace bit), traffic summed —
        // per-page portions are linear in bytes, so the sums are identical
        // to the per-page walk.
        let first = Vpn::new(span.addr / gp);
        let last = Vpn::new((span.end() - 1) / gp);
        #[cfg(debug_assertions)]
        for v in first.get()..=last.get() {
            debug_assert!(
                self.rt.gpu_pt.is_populated(Vpn::new(v)),
                "access to unmapped device page"
            );
        }
        self.translate_range(gh_units::VpnRange::new(
            tlb_key_gpu(first),
            Vpn::new(tlb_key_gpu(last).get() + 1),
        ));
        self.account_local(span.len, write, random);
    }

    fn span_pinned(&mut self, span: VaRange, write: bool, random: bool) {
        // Pinned memory is always CPU-resident: pure remote traffic.
        let spt = self.rt.os.system_pt.page_size();
        let vpns = self.rt.os.system_pt.vpn_range(span.addr, span.len);
        if self.rt.session.opts.access_ref {
            for vpn in vpns {
                self.translate(tlb_key_sys(vpn));
                if write {
                    self.rt.os.system_pt.mark_dirty(vpn);
                }
            }
        } else {
            // `mark_dirty` cannot affect the TLB, so hoisting the dirty
            // sweep out of the translate loop preserves state exactly.
            self.translate_range(self.sys_keys(span.addr, span.end()));
            if write {
                self.rt.os.system_pt.mark_dirty_range(vpns);
            }
        }
        self.account_remote(span.addr, span.len.max(spt.min(span.len)), write, random);
    }

    fn span_system(
        &mut self,
        buf_id: u32,
        buf_range: VaRange,
        span: VaRange,
        write: bool,
        random: bool,
    ) {
        let spt = self.rt.os.system_pt.page_size();
        let line = self.rt.params.gpu_cacheline;
        let vpns = self.rt.os.system_pt.vpn_range(span.addr, span.len);
        // The batched core assumes line-aligned page boundaries (so
        // per-page cacheline counts sum exactly), full pages never taking
        // the small-irregular L2 path, and page-aligned counter regions
        // (so counter chunks never split a page). Anything else — and
        // tiny spans, where batch setup costs more than it saves — takes
        // the reference walk; both paths are bit-identical.
        let batchable = !self.rt.session.opts.access_ref
            && vpns.count().get() > BATCH_MIN_PAGES
            && spt.is_multiple_of(line)
            && spt >= 4 * line
            && self.rt.params.counter_region.is_multiple_of(spt);
        if !batchable {
            let (_, fault_cost) =
                self.span_system_pages(span.addr, span.end(), write, random, 0, false);
            if fault_cost > 0 {
                self.rt.tick(fault_cost);
            }
            return;
        }
        let runs = self.rt.classify_span_cached(buf_id, buf_range, vpns);
        self.rt
            .session
            .perf
            .count(gh_perf::Ctr::BatchRuns, widen(runs.len()));
        let mut fault_cost: Ns = 0;
        for (vr, node) in runs {
            // Clip the run (vpn-granular) to the accessed byte span.
            let a0 = span.addr.max(vr.start.get() * spt);
            let a1 = span.end().min(vr.end.get() * spt);
            if a0 >= a1 {
                continue;
            }
            match node {
                Some(node) => {
                    let mut a = a0;
                    if fault_cost > 0 {
                        // Pending fault cost from an earlier run: the
                        // 256 KiB flush ticks must land at the exact
                        // virtual times the reference walk produces, so
                        // walk per page until the flush happens.
                        let (resume, fc) =
                            self.span_system_pages(a, a1, write, random, fault_cost, true);
                        a = resume;
                        fault_cost = fc;
                    }
                    if a < a1 {
                        self.span_system_resident(a, a1, node, write, random);
                    }
                }
                // Unpopulated pages: fault service is inherently
                // per-page (SMMU + OS cost accrual + flush cadence).
                None => {
                    let (_, fc) = self.span_system_pages(a0, a1, write, random, fault_cost, false);
                    fault_cost = fc;
                }
            }
        }
        if fault_cost > 0 {
            self.rt.tick(fault_cost);
        }
    }

    /// The per-page reference walk over `[addr, end)` of system memory —
    /// the original access path, retained as the behavioural baseline the
    /// batched core is differentially tested against. Returns the resume
    /// address and still-pending fault cost. With `stop_after_flush`, the
    /// walk returns right after a 256 KiB flush tick zeroes the pending
    /// cost, so a batched caller can take over at the same virtual time.
    fn span_system_pages(
        &mut self,
        mut addr: u64,
        end: u64,
        write: bool,
        random: bool,
        mut fault_cost: Ns,
        stop_after_flush: bool,
    ) -> (u64, Ns) {
        let spt = self.rt.os.system_pt.page_size();
        let line = self.rt.params.gpu_cacheline;
        while addr < end {
            let page_end = (addr / spt + 1) * spt;
            let portion = page_end.min(end) - addr;
            let vpn = self.rt.os.system_pt.vpn(addr);
            self.translate(tlb_key_sys(vpn));
            let node = match self.rt.os.system_pt.translate(vpn) {
                Some(pte) => pte.node,
                None => {
                    // GPU first touch of a system page: SMMU raises a
                    // fault, the OS services it on the CPU (§5.1.2).
                    self.rt.smmu.raise_fault();
                    let o = self.rt.os.ats_fault(vpn, &mut self.rt.phys);
                    fault_cost = fault_cost.saturating_add(o.cost);
                    self.t.ats_faults = self.t.ats_faults.saturating_add(1);
                    o.placed
                }
            };
            match node {
                Node::Gpu => self.account_local(portion, write, random),
                // Unified pool: "CPU-resident" is attribution only — the
                // page lives in the same HBM the GPU reads at full speed,
                // and there are no access counters to trip.
                Node::Cpu if self.rt.params.unified_pool => {
                    self.account_local(portion, write, random)
                }
                Node::Cpu => {
                    self.account_remote(addr, portion, write, random);
                    // Hardware access counters see remote GPU accesses.
                    let region = self.rt.counters.region_of(addr);
                    let lines = portion.div_ceil(line);
                    if self.rt.counters.enabled() {
                        self.rt
                            .remote_touched
                            .entry(region)
                            .or_default()
                            .insert(vpn);
                        if let Some(n) = self.rt.counters.record(region, lines) {
                            self.rt.pending_notifs.push_back(n.region);
                            self.t.notifications = self.t.notifications.saturating_add(1);
                        }
                    }
                }
            }
            if write {
                self.rt.os.system_pt.mark_dirty(vpn);
            }
            addr = page_end;
            // Serial fault service is visible to the profiler as it
            // happens: flush accumulated cost every 256 KiB of pages so
            // init ramps resolve in the memory profile.
            if fault_cost > 0 && addr.is_multiple_of(256 * 1024) {
                self.rt.tick(fault_cost);
                fault_cost = 0;
                if stop_after_flush {
                    return (addr, 0);
                }
            }
        }
        (addr, fault_cost)
    }

    /// Batched accounting for a resident run `[a0, a1)` whose pages all
    /// live on `node`. Charges exactly what the reference walk charges
    /// page by page: TLB walks in key order, linear traffic sums, the
    /// small-irregular L2 path only for the head/tail partial pages
    /// (full pages never take it under the `spt >= 4 * line` batch
    /// guard), and access-counter records per region chunk in address
    /// order with per-page-exact cacheline sums.
    fn span_system_resident(&mut self, a0: u64, a1: u64, node: Node, write: bool, random: bool) {
        let spt = self.rt.os.system_pt.page_size();
        let line = self.rt.params.gpu_cacheline;
        match node {
            Node::Gpu => {
                self.translate_range(self.sys_keys(a0, a1));
                self.account_local(a1 - a0, write, random);
            }
            Node::Cpu if self.rt.params.unified_pool => {
                self.translate_range(self.sys_keys(a0, a1));
                self.account_local(a1 - a0, write, random);
            }
            Node::Cpu => {
                // Under tracing with counters armed, CounterNotify events
                // must interleave with TlbEvict events mid-run exactly as
                // the per-page walk emits them — fall back.
                if self.rt.counters.enabled() && self.rt.session.bus.is_on() {
                    let _ = self.span_system_pages(a0, a1, write, random, 0, false);
                    return; // dirty bits handled per page above
                }
                self.translate_range(self.sys_keys(a0, a1));
                // Head partial / interior full pages / tail partial:
                // `ceil(total/line)` differs from the per-page sum, so the
                // split must mirror the page grid.
                let mut p = a0;
                let head_end = (a0 / spt + 1) * spt;
                if !a0.is_multiple_of(spt) {
                    self.account_remote(a0, head_end.min(a1) - a0, write, random);
                    p = head_end;
                }
                if p < a1 {
                    let full = (a1 - p) / spt;
                    if full > 0 {
                        self.account_remote_full_pages(full, write, random);
                        p += full * spt;
                    }
                    if p < a1 {
                        self.account_remote(p, a1 - p, write, random);
                    }
                }
                if self.rt.counters.enabled() {
                    let rsz = self.rt.params.counter_region;
                    let mut c = a0;
                    while c < a1 {
                        let c_end = ((c / rsz + 1) * rsz).min(a1);
                        let region = self.rt.counters.region_of(c);
                        let chunk_vpns = self.rt.os.system_pt.vpn_range(c, c_end - c);
                        let touched = self.rt.remote_touched.entry(region).or_default();
                        for vpn in chunk_vpns {
                            touched.insert(vpn);
                        }
                        let lines = lines_per_page_sum(c, c_end, spt, line);
                        if let Some(n) = self.rt.counters.record(region, lines) {
                            self.rt.pending_notifs.push_back(n.region);
                            self.t.notifications = self.t.notifications.saturating_add(1);
                        }
                        c = c_end;
                    }
                }
            }
        }
        if write {
            let vpns = self.rt.os.system_pt.vpn_range(a0, a1 - a0);
            self.rt.os.system_pt.mark_dirty_range(vpns);
        }
    }

    /// Remote accounting for `pages` full system pages in one shot:
    /// identical sums to `pages` reference calls of
    /// `account_remote(_, spt, ..)` because full pages never take the
    /// small-irregular L2 path (`spt >= 4 * line` batch guard) and
    /// `spt % line == 0` makes the per-page line rounding exact.
    fn account_remote_full_pages(&mut self, pages: u64, write: bool, random: bool) {
        let spt = self.rt.os.system_pt.page_size();
        let line = self.rt.params.gpu_cacheline;
        let lines = Lines::new(pages.saturating_mul(spt / line));
        match (write, random) {
            (false, false) => self.c2c_read_lines += lines,
            (false, true) => self.c2c_read_lines_rand += lines,
            (true, false) => self.c2c_write_lines += lines,
            (true, true) => self.c2c_write_lines_rand += lines,
        }
        let bytes = pages.saturating_mul(spt);
        if write {
            self.t.c2c_write = self.t.c2c_write.saturating_add(bytes);
        } else {
            self.t.c2c_read = self.t.c2c_read.saturating_add(bytes);
        }
        self.t.l1l2 = self.t.l1l2.saturating_add(bytes);
    }

    fn span_managed(&mut self, buf_range: VaRange, span: VaRange, write: bool, random: bool) {
        let spt = self.rt.os.system_pt.page_size();
        // Thrash-pinned or ReadMostly/CPU-preferred-advised allocations
        // are served entirely by coherent remote access (no faults, no
        // migration attempts) once their pages exist.
        if self.rt.migration_advised_off(buf_range.addr) {
            let vpns = self.rt.os.system_pt.vpn_range(span.addr, span.len);
            let cpu = self.rt.os.system_pt.count_resident_in(vpns, Node::Cpu);
            let gpu = self.rt.os.system_pt.count_resident_in(vpns, Node::Gpu);
            if cpu + gpu == vpns.count() {
                if self.rt.session.opts.access_ref {
                    for vpn in vpns {
                        self.translate(tlb_key_sys(vpn));
                        if write {
                            self.rt.os.system_pt.mark_dirty(vpn);
                        }
                    }
                } else {
                    self.translate_range(self.sys_keys(span.addr, span.end()));
                    if write {
                        self.rt.os.system_pt.mark_dirty_range(vpns);
                    }
                }
                let page = self.rt.os.system_pt.page();
                let gpu_bytes = (gpu * page).get().min(span.len);
                if gpu_bytes > 0 {
                    self.account_local(gpu_bytes, write, random);
                }
                if span.len > gpu_bytes {
                    self.account_remote(span.addr, span.len - gpu_bytes, write, random);
                }
                return;
            }
        }
        if self.rt.uvm.is_pinned_cpu(buf_range) {
            if self.rt.session.opts.access_ref {
                for vpn in self.rt.os.system_pt.vpn_range(span.addr, span.len) {
                    self.translate(tlb_key_sys(vpn));
                    if write {
                        self.rt.os.system_pt.mark_dirty(vpn);
                    }
                }
            } else {
                self.translate_range(self.sys_keys(span.addr, span.end()));
                if write {
                    let vpns = self.rt.os.system_pt.vpn_range(span.addr, span.len);
                    self.rt.os.system_pt.mark_dirty_range(vpns);
                }
            }
            self.account_remote(span.addr, span.len, write, random);
            return;
        }
        let first = block_of(span.addr);
        let last = block_of(span.end() - 1);
        for block in first..=last {
            let clip = block_range(block, span);
            if clip.len == 0 {
                continue;
            }
            let vpns = self.rt.os.system_pt.vpn_range(clip.addr, clip.len);
            let n_pages = vpns.count();
            let populated = self.rt.os.system_pt.count_resident_in(vpns, Node::Cpu)
                + self.rt.os.system_pt.count_resident_in(vpns, Node::Gpu);
            if populated < n_pages {
                // GPU first touch: block-granularity population, directly
                // in GPU memory — the *fast* managed init path (§5.1.2).
                let (cost, on_gpu, _) = self.rt.uvm_first_touch_block(block, buf_range);
                self.rt.tick(cost);
                self.t.gpu_faults = self.t.gpu_faults.saturating_add(1);
                self.rt.session.perf.count(gh_perf::Ctr::Faults, 1);
                self.t.bytes_migrated_in = self.t.bytes_migrated_in.saturating_add(0); // population, not migration
                let _ = on_gpu;
                if self.rt.session.bus.is_on() {
                    self.rt.session.bus.emit(gh_trace::Event::PageFault {
                        kind: gh_trace::FaultKind::Gpu,
                        va: block * crate::uvm::BLOCK,
                        cost,
                    });
                    self.rt.session.bus.count("uvm.gpu_faults", 1);
                    self.rt.session.bus.observe("fault.cost_ns", cost);
                }
            }
            let cpu_pages = self.rt.os.system_pt.count_resident_in(vpns, Node::Cpu);
            if !cpu_pages.is_zero() {
                // Replayable GPU fault → driver migrates the block in
                // (or falls back to remote mapping under self-eviction).
                let fault = self.rt.params.uvm_fault_batch;
                self.rt.tick(fault);
                self.t.gpu_faults = self.t.gpu_faults.saturating_add(1);
                self.rt.session.perf.count(gh_perf::Ctr::Faults, 1);
                if self.rt.session.bus.is_on() {
                    self.rt.session.bus.emit(gh_trace::Event::PageFault {
                        kind: gh_trace::FaultKind::Gpu,
                        va: block * crate::uvm::BLOCK,
                        cost: fault,
                    });
                    self.rt.session.bus.count("uvm.gpu_faults", 1);
                    self.rt.session.bus.observe("fault.cost_ns", fault);
                }
                // Pass the *whole* allocation range: the driver refuses to
                // evict this same allocation to serve its own fault.
                let (cost, migrated) = self.rt.uvm_migrate_block_in(block, buf_range);
                self.rt.tick(cost);
                if migrated > 0 {
                    self.t.pages_migrated_in = self.t.pages_migrated_in.saturating_add(migrated);
                    self.t.bytes_migrated_in =
                        self.t.bytes_migrated_in.saturating_add(migrated * spt);
                    // Speculative sequential prefetch: after two
                    // consecutive migrated blocks, pull the next one in
                    // without waiting for its fault.
                    if self.rt.session.opts.uvm_prefetch
                        && self
                            .rt
                            .uvm
                            .migrated_this_kernel
                            .contains(&(block.wrapping_sub(1)))
                        && block_range(block + 1, buf_range).len > 0
                    {
                        let (pcost, pmigrated) = self.rt.uvm_migrate_block_in(block + 1, buf_range);
                        self.rt.tick(pcost);
                        self.t.pages_migrated_in =
                            self.t.pages_migrated_in.saturating_add(pmigrated);
                        self.t.bytes_migrated_in =
                            self.t.bytes_migrated_in.saturating_add(pmigrated * spt);
                    }
                } else {
                    // Remote mapping: cacheline-grain access to the
                    // CPU-resident pages of this block.
                    let page = self.rt.os.system_pt.page();
                    let remote_bytes = (cpu_pages * page).get().min(clip.len);
                    self.account_remote(clip.addr, remote_bytes, write, random);
                    if self.rt.session.opts.access_ref {
                        for vpn in vpns {
                            self.translate(tlb_key_sys(vpn));
                        }
                    } else {
                        self.translate_range(self.sys_keys(clip.addr, clip.end()));
                    }
                }
            }
            // Whatever is GPU-resident now is read/written locally.
            let gpu_pages = self.rt.os.system_pt.count_resident_in(vpns, Node::Gpu);
            if !gpu_pages.is_zero() {
                let page = self.rt.os.system_pt.page();
                let local_bytes = (gpu_pages * page).get().min(clip.len);
                self.account_local(local_bytes, write, random);
                self.translate(tlb_key_gpu(Vpn::new(block)));
                self.rt.uvm.touch_lru(block);
            }
            if write {
                if self.rt.session.opts.access_ref {
                    for vpn in vpns {
                        self.rt.os.system_pt.mark_dirty(vpn);
                    }
                } else {
                    self.rt.os.system_pt.mark_dirty_range(vpns);
                }
            }
        }
    }

    /// Ends the kernel: runs the access-counter migration driver, charges
    /// pipelined memory/compute time, records traffic, and returns the
    /// report.
    pub fn finish(mut self) -> KernelReport {
        self.finished = true;
        // Park the L2 model so the next launch revives it with an O(1)
        // reset instead of a fresh multi-megabyte allocation. A
        // zero-capacity stand-in takes its place; no access touches the
        // L2 after this point.
        let line = Bytes::new(self.rt.params.gpu_cacheline);
        let parked = std::mem::replace(&mut self.l2, gh_mem::SetCache::new(Bytes::new(0), line, 1));
        self.rt.l2_pool = Some(parked);
        // --- access-counter migration driver (system memory, §2.2.1) ---
        let budget = self.rt.params.counter_budget_per_kernel;
        let mut serviced = 0;
        while serviced < budget {
            let Some(region) = self.rt.pending_notifs.pop_front() else {
                break;
            };
            serviced = serviced.saturating_add(1);
            let dt = self.drain_notification(region);
            self.rt.tick(dt);
        }

        // Counter aging at the kernel boundary (see
        // AccessCounters::age): sparse traffic does not accumulate
        // across kernels.
        self.rt.counters.age();

        // --- pipelined memory time ---
        let p = &self.rt.params;
        let mut mem: Ns = 0;
        mem += CostParams::transfer_ns(Bytes::new(self.hbm_stream), p.hbm_bw);
        mem += CostParams::transfer_ns(Bytes::new(self.hbm_random), p.hbm_bw * p.hbm_random_eff);
        let line = Bytes::new(p.gpu_cacheline);
        let (s_eff, r_eff) = (p.c2c_stream_eff, p.c2c_random_eff);
        mem += self
            .rt
            .link
            .cacheline_stream_eff(self.c2c_read_lines, line, Direction::H2D, s_eff);
        mem += self
            .rt
            .link
            .cacheline_stream_eff(self.c2c_write_lines, line, Direction::D2H, s_eff);
        mem += self.rt.link.cacheline_stream_eff(
            self.c2c_read_lines_rand,
            line,
            Direction::H2D,
            r_eff,
        );
        mem += self.rt.link.cacheline_stream_eff(
            self.c2c_write_lines_rand,
            line,
            Direction::D2H,
            r_eff,
        );
        mem += self.xlat_misses * p.ats_translate / XLAT_OUTSTANDING;
        let compute = ns_from_f64((self.compute_units as f64 / p.gpu_throughput).ceil());
        self.rt.tick(mem.max(compute));

        let time = self.rt.now() - self.start;
        let name = format!("{}#{}", self.name, self.rt.kernel_seq);
        self.rt.traffic.push(&name, self.t);
        self.rt.kernel_times.push((name.clone(), time));
        self.rt.trace(&name, "kernel", self.start);
        let mut by_buffer: Vec<BufferTraffic> = self
            .by_buffer
            .iter()
            .map(|(&id, &BufBytes { c2c, hbm })| BufferTraffic {
                tag: self.rt.buffer_tag(id).unwrap_or("<freed>").to_string(),
                c2c,
                hbm,
            })
            .collect();
        by_buffer.sort_by(|a, b| {
            b.c2c
                .cmp(&a.c2c)
                .then(b.hbm.cmp(&a.hbm))
                .then(a.tag.cmp(&b.tag))
        });
        KernelReport {
            name,
            time,
            traffic: self.t,
            by_buffer,
        }
    }

    /// Services one notification: migrate the touched, still-CPU-resident
    /// pages of the hot region to the GPU, up to the driver's DMA depth
    /// (`counter_service_max_pages`). Leftover touched pages stay queued:
    /// the region re-arms and re-fires on further remote access. System
    /// memory never evicts to make room — if the GPU is full the
    /// notification is dropped and the region stays CPU-resident.
    fn drain_notification(&mut self, region: u64) -> Ns {
        let spt = self.rt.os.system_pt.page_size();
        // cudaMemAdvise: ranges advised CPU-preferred or read-mostly are
        // never migrated by the counter engine.
        let region_addr = region * self.rt.params.counter_region;
        if self.rt.migration_advised_off(region_addr) {
            self.rt.remote_touched.remove(&region);
            self.rt.counters.clear(region);
            return 0;
        }
        let touched = match self.rt.remote_touched.get_mut(&region) {
            Some(t) => t,
            None => {
                self.rt.counters.clear(region);
                return 0;
            }
        };
        let cap = self.rt.params.counter_service_max_pages as usize;
        let take: Vec<Vpn> = touched.iter().copied().take(cap).collect();
        for vpn in &take {
            touched.remove(vpn);
        }
        if touched.is_empty() {
            self.rt.remote_touched.remove(&region);
        }
        self.rt.counters.clear(region);
        let movable: Vec<Vpn> = take
            .into_iter()
            .filter(|&vpn| {
                self.rt
                    .os
                    .system_pt
                    .translate(vpn)
                    .is_some_and(|pte| pte.node == Node::Cpu)
            })
            .collect();
        let page = self.rt.os.system_pt.page();
        let pages = Pages::new(widen(movable.len()));
        let bytes = pages * page;
        if bytes.is_zero() || self.rt.phys.free(Node::Gpu) < bytes {
            return 0;
        }
        for &vpn in &movable {
            self.rt.move_page(vpn, Node::Gpu);
        }
        self.t.pages_migrated_in = self.t.pages_migrated_in.saturating_add(pages.get());
        self.t.bytes_migrated_in = self.t.bytes_migrated_in.saturating_add(bytes.get());
        if self.rt.session.bus.is_on() {
            self.rt.session.bus.emit(gh_trace::Event::Migration {
                engine: gh_trace::Engine::Counter,
                dir: gh_trace::Dir::H2D,
                pages: pages.get(),
                bytes: bytes.get(),
            });
            self.rt
                .session
                .bus
                .count("counters.pages_migrated_in", pages.get());
            self.rt
                .session
                .bus
                .count("counters.bytes_migrated_in", bytes.get());
            self.rt.session.bus.observe("migration.bytes", bytes.get());
        }
        let transfer = self.rt.link.bulk(bytes, Direction::H2D);
        // In-flight stall (see CostParams::counter_stall_factor): grows
        // with the migration-unit (system page) size.
        let stall = ns_from_f64(
            transfer as f64
                * ((spt as f64 / 4096.0) - 1.0).max(0.0)
                * self.rt.params.counter_stall_factor,
        );
        self.rt.params.counter_region_fixed
            + pages
                .get()
                .saturating_mul(self.rt.params.counter_migrate_fixed)
            + transfer
            + stall
    }
}

impl Drop for Kernel<'_> {
    fn drop(&mut self) {
        if !self.finished && !std::thread::panicking() {
            panic!("kernel '{}' dropped without finish()", self.name); // gh-audit: allow(no-unwrap-in-lib) -- deliberate drop-guard trap for kernels never finish()ed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeOptions;
    use gh_mem::params::{CostParams, KIB, MIB};

    fn rt() -> Runtime {
        Runtime::new(CostParams::default(), RuntimeOptions::default())
    }

    fn rt_nomig() -> Runtime {
        Runtime::new(
            CostParams::default(),
            RuntimeOptions {
                auto_migration: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn device_access_is_local_hbm() {
        let mut r = rt();
        let d = r.cuda_malloc(Bytes::new(4 * MIB), "d").unwrap();
        let mut k = r.launch("k");
        k.read(&d, 0, 4 * MIB);
        k.write(&d, 0, MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.hbm_read, 4 * MIB);
        assert_eq!(rep.traffic.hbm_write, MIB);
        assert_eq!(rep.traffic.c2c_read, 0);
        assert_eq!(rep.traffic.l1l2, 5 * MIB);
    }

    #[test]
    fn system_cpu_resident_access_goes_over_c2c_without_migration() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(4 * MIB), "s");
        r.cpu_write(&b, 0, 4 * MIB);
        let rss_before = r.rss();
        let mut k = r.launch("k");
        k.read(&b, 0, 4 * MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.c2c_read, 4 * MIB);
        assert_eq!(rep.traffic.hbm_read, 0);
        assert_eq!(rep.traffic.ats_faults, 0);
        assert_eq!(r.rss(), rss_before, "no migration with counters off");
    }

    #[test]
    fn system_gpu_first_touch_raises_ats_faults() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(MIB), "s");
        let pages = MIB / r.params().system_page_size;
        let mut k = r.launch("init");
        k.write(&b, 0, MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.ats_faults, pages);
        assert_eq!(r.os().ats_faults(), pages);
        // First touch came from the GPU → pages live in HBM.
        assert_eq!(rep.traffic.hbm_write, MIB);
        assert_eq!(r.gpu_used() - r.params().gpu_driver_baseline, MIB);
    }

    #[test]
    fn system_gpu_init_slower_than_managed_gpu_init() {
        // The §5.1.2 effect: GPU-side first touch of system memory is
        // far more expensive than managed memory's block population.
        let sz = 16 * MIB;
        let mut rs = rt_nomig();
        let bs = rs.malloc_system(Bytes::new(sz), "s");
        let t0 = rs.now();
        let mut k = rs.launch("init");
        k.write(&bs, 0, sz);
        k.finish();
        let system_time = rs.now() - t0;

        let mut rm = rt_nomig();
        let bm = rm.cuda_malloc_managed(Bytes::new(sz), "m");
        let t0 = rm.now();
        let mut k = rm.launch("init");
        k.write(&bm, 0, sz);
        k.finish();
        let managed_time = rm.now() - t0;
        assert!(
            system_time > managed_time * 3,
            "system {system_time} vs managed {managed_time}"
        );
    }

    #[test]
    fn managed_cpu_resident_pages_migrate_on_gpu_access() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(8 * MIB), "m");
        r.cpu_write(&b, 0, 8 * MIB);
        assert_eq!(r.rss(), 8 * MIB);
        let mut k = r.launch("k");
        k.read(&b, 0, 8 * MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.bytes_migrated_in, 8 * MIB);
        assert!(rep.traffic.gpu_faults > 0);
        assert_eq!(r.rss(), 0, "all pages migrated to GPU");
        // Second kernel reads locally.
        let mut k = r.launch("k2");
        k.read(&b, 0, 8 * MIB);
        let rep2 = k.finish();
        assert_eq!(rep2.traffic.hbm_read, 8 * MIB);
        assert_eq!(rep2.traffic.bytes_migrated_in, 0);
        assert!(rep2.time < rep.time);
    }

    #[test]
    fn counter_migration_is_delayed_and_budgeted() {
        let params = CostParams {
            counter_budget_per_kernel: 1,
            ..Default::default()
        };
        let mut r = Runtime::new(params, RuntimeOptions::default());
        let b = r.malloc_system(Bytes::new(8 * MIB), "s"); // 4 regions
        r.cpu_write(&b, 0, 8 * MIB);
        // Each kernel re-reads everything: regions get hot, driver
        // migrates one region per kernel.
        let mut migrated_total = 0;
        let mut times = Vec::new();
        for i in 0..6 {
            let mut k = r.launch(&format!("iter{i}"));
            k.read(&b, 0, 8 * MIB);
            let rep = k.finish();
            migrated_total += rep.traffic.bytes_migrated_in;
            times.push(rep.time);
        }
        assert_eq!(migrated_total, 8 * MIB, "whole working set migrated");
        // Last iterations are faster than the first (local reads).
        assert!(times[5] < times[0]);
        // Migration happened over several kernels, not all at once.
        assert!(r.traffic.kernels_named("iter0").len() == 1);
        let first = r.traffic.kernels_named("iter0")[0].bytes_migrated_in;
        assert!(first < 8 * MIB);
    }

    #[test]
    fn counter_migration_disabled_means_no_movement() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(8 * MIB), "s");
        r.cpu_write(&b, 0, 8 * MIB);
        for _ in 0..3 {
            let mut k = r.launch("k");
            k.read(&b, 0, 8 * MIB);
            let rep = k.finish();
            assert_eq!(rep.traffic.bytes_migrated_in, 0);
        }
        assert_eq!(r.rss(), 8 * MIB);
    }

    #[test]
    fn strided_access_marks_random_and_touches_pages() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(8 * MIB), "s");
        r.cpu_write(&b, 0, 8 * MIB);
        let mut k = r.launch("k");
        // 1 KiB segments every 64 KiB: touches every 64K page but only
        // 1/64 of the bytes.
        k.read_strided(&b, 0, KIB, 64 * KIB, 128);
        let rep = k.finish();
        assert_eq!(rep.traffic.c2c_read, 128 * KIB);
    }

    #[test]
    fn gather_touches_individual_lines() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(MIB), "s");
        r.cpu_write(&b, 0, MIB);
        let mut k = r.launch("k");
        k.gather_read(&b, (0..100).map(|i| i * 8 * KIB), Bytes::new(8));
        let rep = k.finish();
        // Each 8-byte gather costs one full 128 B line remotely.
        assert_eq!(rep.traffic.c2c_read, 100 * 128);
    }

    #[test]
    fn compute_bound_kernel_time_tracks_compute() {
        let mut r = rt();
        let t0 = {
            let mut k = r.launch("c");
            k.compute(9_000_000_000); // 1 ms at 9000 units/ns
            k.finish().time
        };
        assert!((900_000..1_200_000).contains(&t0), "got {t0}");
    }

    #[test]
    fn memory_and_compute_overlap() {
        let mut r = rt();
        let d = r.cuda_malloc(Bytes::new(34 * MIB), "d").unwrap();
        let mut k = r.launch("k");
        k.read(&d, 0, 34 * MIB); // ~10 µs at 3.4 TB/s
        k.compute(900_000_000); // 100 µs
        let rep = k.finish();
        assert!(
            rep.time >= 100_000 && rep.time < 120_000,
            "compute-bound kernel, got {}",
            rep.time
        );
    }

    #[test]
    fn pinned_access_is_always_remote() {
        let mut r = rt();
        let b = r.cuda_malloc_host(Bytes::new(MIB), "p");
        let mut k = r.launch("k");
        k.read(&b, 0, MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.c2c_read, MIB);
        assert_eq!(rep.traffic.hbm_read, 0);
    }

    #[test]
    #[should_panic(expected = "without finish")]
    fn dropping_unfinished_kernel_panics() {
        let mut r = rt();
        let _k = r.launch("oops");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kernel_access_oob_panics() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(KIB), "s"); // rounds up to one 64 KiB page
        let mut k = r.launch("k");
        k.read(&b, 0, 128 * KIB);
        k.finish();
    }

    #[test]
    fn mem_advise_read_mostly_blocks_counter_migration() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(6 * MIB), "shared");
        r.cpu_write(&b, 0, 6 * MIB);
        r.cuda_mem_advise(&b, crate::runtime::MemAdvise::ReadMostly);
        for _ in 0..8 {
            let mut k = r.launch("reader");
            k.read(&b, 0, 6 * MIB);
            let rep = k.finish();
            assert_eq!(rep.traffic.bytes_migrated_in, 0);
        }
        assert_eq!(r.rss(), 6 * MIB, "data stays CPU-resident");
        // Clearing the advice re-enables migration.
        r.cuda_mem_advise(&b, crate::runtime::MemAdvise::Clear);
        let mut moved = 0;
        for _ in 0..8 {
            let mut k = r.launch("reader");
            k.read(&b, 0, 6 * MIB);
            moved += k.finish().traffic.bytes_migrated_in;
        }
        assert!(moved > 0);
    }

    #[test]
    fn mem_advise_read_mostly_keeps_managed_remote() {
        let mut r = rt();
        let b = r.cuda_malloc_managed(Bytes::new(4 * MIB), "shared");
        r.cpu_write(&b, 0, 4 * MIB);
        r.cuda_mem_advise(&b, crate::runtime::MemAdvise::ReadMostly);
        let mut k = r.launch("reader");
        k.read(&b, 0, 4 * MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.bytes_migrated_in, 0, "no on-demand migration");
        assert_eq!(rep.traffic.gpu_faults, 0);
        assert_eq!(rep.traffic.c2c_read, 4 * MIB);
        assert_eq!(r.rss(), 4 * MIB);
    }

    #[test]
    fn mem_advise_preferred_gpu_steers_first_touch() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(2 * MIB), "pref");
        r.cuda_mem_advise(&b, crate::runtime::MemAdvise::PreferredLocation(Node::Gpu));
        r.cpu_write(&b, 0, 2 * MIB);
        assert_eq!(r.rss(), 0, "CPU writes landed on the GPU node");
        assert_eq!(r.gpu_used() - r.params().gpu_driver_baseline, 2 * MIB);
    }

    #[test]
    fn read_2d_full_pitch_equals_dense() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(MIB), "s");
        r.cpu_write(&b, 0, MIB);
        let mut k = r.launch("dense");
        k.read_2d(&b, 0, Bytes::new(1024), 1024, 64);
        let dense = k.finish().traffic;
        let mut k = r.launch("sub");
        k.read_2d(&b, 0, Bytes::new(256), 1024, 64);
        let sub = k.finish().traffic;
        assert_eq!(dense.l1l2, 64 * 1024);
        assert_eq!(sub.l1l2, 64 * 256);
        assert!(sub.c2c_read >= 64 * 256, "line-rounded remote traffic");
    }

    #[test]
    fn per_buffer_attribution_identifies_top_talker() {
        let mut r = rt_nomig();
        let remote = r.malloc_system(Bytes::new(2 * MIB), "remote_buf");
        r.cpu_write(&remote, 0, 2 * MIB);
        let local = r.cuda_malloc(Bytes::new(4 * MIB), "local_buf").unwrap();
        let mut k = r.launch("k");
        k.read(&remote, 0, 2 * MIB);
        k.read(&local, 0, 4 * MIB);
        let rep = k.finish();
        assert_eq!(rep.by_buffer.len(), 2);
        assert_eq!(rep.by_buffer[0].tag, "remote_buf");
        assert_eq!(rep.by_buffer[0].c2c, 2 * MIB);
        assert_eq!(rep.by_buffer[0].hbm, 0);
        let local_row = rep.by_buffer.iter().find(|b| b.tag == "local_buf").unwrap();
        assert_eq!(local_row.hbm, 4 * MIB);
        assert_eq!(local_row.c2c, 0);
    }

    #[test]
    fn l1l2_includes_local_and_remote() {
        let mut r = rt_nomig();
        let b = r.malloc_system(Bytes::new(2 * MIB), "s");
        r.cpu_write(&b, 0, MIB); // half CPU-resident
        let mut k = r.launch("init_rest");
        k.write(&b, MIB, MIB); // half GPU first-touch
        k.finish();
        let mut k = r.launch("k");
        k.read(&b, 0, 2 * MIB);
        let rep = k.finish();
        assert_eq!(rep.traffic.l1l2, 2 * MIB);
        assert_eq!(rep.traffic.c2c_read, MIB);
        assert_eq!(rep.traffic.hbm_read, MIB);
    }
}
