//! Buffer handles.

use gh_os::VaRange;

/// Which allocator produced a buffer — the paper's memory-management
/// categories (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufKind {
    /// `malloc`: system-allocated, system page table, either node,
    /// first-touch placement, access-counter migration.
    System,
    /// `cudaMallocManaged`: unified, on-demand block migration.
    Managed,
    /// `cudaMalloc`: GPU-only, explicit copies.
    Device,
    /// `cudaMallocHost`: pinned CPU memory.
    Pinned,
}

/// A handle to a simulated allocation. Cheap to copy; the [`crate::Runtime`]
/// owns all metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Buffer {
    pub(crate) id: u32,
    /// The buffer's virtual address range.
    pub range: VaRange,
    /// Allocator category.
    pub kind: BufKind,
}

impl Buffer {
    /// Opaque id (unique per runtime).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Length in bytes (rounded up to a page multiple at allocation).
    pub fn len(&self) -> u64 {
        self.range.len
    }

    /// Whether the buffer has zero length (never true for live buffers).
    pub fn is_empty(&self) -> bool {
        self.range.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_copy_and_reports_len() {
        let b = Buffer {
            id: 3,
            range: VaRange {
                addr: 0x1000,
                len: 4096,
            },
            kind: BufKind::System,
        };
        let c = b;
        assert_eq!(b, c);
        assert_eq!(c.len(), 4096);
        assert_eq!(c.id(), 3);
        assert!(!c.is_empty());
    }
}
