//! The simulated GH200 runtime: allocators, explicit copies, host-side
//! access, context management.

use gh_mem::clock::{Clock, Ns};
use gh_mem::counters::AccessCounters;
use gh_mem::link::{Direction, Link};
use gh_mem::pagetable::PageTable;
use gh_mem::params::CostParams;
use gh_mem::phys::{Node, OutOfMemory, PhysMem};
use gh_mem::smmu::Smmu;
use gh_mem::tlb::Tlb;
use gh_mem::traffic::TrafficTotals;
use gh_os::{Os, OsConfig, VmaKind};
use gh_profiler::MemProfiler;
use gh_units::{Bytes, Lines, Vpn};

use crate::buffer::{BufKind, Buffer};

/// `cudaMemAdvise` advice values (subset relevant to the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAdvise {
    /// Prefer placing (and keeping) the range on this node.
    PreferredLocation(Node),
    /// The range is read-shared: do not migrate it.
    ReadMostly,
    /// Remove previous advice.
    Clear,
}
use crate::kernel::Kernel;
use crate::uvm::UvmState;
use std::collections::HashMap;

/// Behavioural switches for a simulated run.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Enable the access-counter automatic migration engine for
    /// system-allocated memory (the paper disables it for the Fig 3
    /// overview, enables it for §5.2/§6).
    pub auto_migration: bool,
    /// Enable the UVM speculative sequential prefetcher for managed
    /// memory (hardware prefetcher, on by default on real systems).
    pub uvm_prefetch: bool,
    /// OS-level switches (AutoNUMA, init_on_alloc).
    pub os: OsConfig,
    /// Memory-profiler sampling period in virtual ns.
    pub profiler_period: Ns,
    /// Force the per-line reference access path instead of the batched
    /// fast core (see [`crate::accesspath`]). Differential testing and
    /// debugging only: both paths produce bit-identical reports, the
    /// reference walk is just page-granular and slow.
    pub access_ref: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            auto_migration: true,
            uvm_prefetch: true,
            os: OsConfig::default(),
            profiler_period: 100_000, // 100 µs of virtual time
            access_ref: false,
        }
    }
}

/// The simulated Grace Hopper node: one process, one GPU.
#[derive(Debug)]
pub struct Runtime {
    pub(crate) params: CostParams,
    pub(crate) clock: Clock,
    pub(crate) phys: PhysMem,
    pub(crate) os: Os,
    pub(crate) link: Link,
    pub(crate) smmu: Smmu,
    pub(crate) gpu_tlb: Tlb,
    /// GPU-exclusive page table (2 MiB pages) for `cudaMalloc` memory.
    pub(crate) gpu_pt: PageTable,
    pub(crate) counters: AccessCounters,
    /// Per-kernel and cumulative traffic (public for experiment harnesses).
    pub traffic: TrafficTotals,
    pub(crate) profiler: MemProfiler,
    pub(crate) uvm: UvmState,
    pub(crate) streams: crate::streams::State,
    allocs: HashMap<u32, (Buffer, String)>,
    /// Access-counter notifications waiting for driver service (FIFO,
    /// drained `counter_budget_per_kernel` at a time at kernel end).
    pub(crate) pending_notifs: std::collections::VecDeque<u64>,
    /// Allocations with migration advised off (`cudaMemAdvise`).
    pub(crate) advise_no_migrate: std::collections::HashSet<u64>,
    /// Remotely-touched system pages per counter region, accumulated
    /// across kernels; the migration driver moves exactly these (touched)
    /// pages, which is what produces 64 KiB-page amplification for
    /// sparse access patterns (Fig 7).
    pub(crate) remote_touched: HashMap<u64, std::collections::BTreeSet<Vpn>>,
    /// Per-kernel durations `(name, ns)` in launch order.
    pub(crate) kernel_times: Vec<(String, gh_mem::clock::Ns)>,
    /// Timeline events for Chrome-trace export.
    pub(crate) timeline: Vec<gh_profiler::TraceEvent>,
    next_buf: u32,
    ctx_ready: bool,
    pub(crate) kernel_seq: u64,
    pub(crate) session: crate::session::SessionCtx,
    /// Cumulative pages moved between memories (every migration funnels
    /// through [`Runtime::move_page`]). State-level: available without
    /// tracing, feeds the sanitizer's capability-gating check.
    pub(crate) migrated_pages: u64,
    /// Stable-placement cache for the batched access path: per-buffer
    /// classification results, validated against the system page table's
    /// placement epoch. Keyed access only (buffer ids are never reused),
    /// so the `HashMap` cannot leak iteration order.
    placement_cache: HashMap<u32, PlacementEntry>,
    /// Recycled GPU-L2 model for the batched path: `Kernel::finish`
    /// parks the multi-megabyte [`gh_mem::SetCache`] here and the next
    /// launch revives it with an O(1) `reset()` instead of re-allocating
    /// and re-zeroing the whole slot array (the dominant per-launch host
    /// cost). Reference-forced runs keep the original fresh allocation.
    pub(crate) l2_pool: Option<gh_mem::SetCache>,
}

/// Cached whole-buffer placement snapshot (see
/// [`Runtime::classify_span_cached`]).
#[derive(Debug, Clone, Copy)]
struct PlacementEntry {
    /// `system_pt.placement_epoch()` when this entry was computed.
    epoch: u64,
    /// `Some(node)` when the whole buffer was uniformly resident on
    /// `node`; `None` when placement was mixed or partial.
    uniform: Option<Node>,
}

impl Runtime {
    /// Boots a simulated machine with a quiet session (no tracing, no
    /// profiling).
    pub fn new(params: CostParams, opts: RuntimeOptions) -> Self {
        Self::with_session(params, crate::session::SessionCtx::new(opts))
    }

    /// Boots a simulated machine owned by an explicit session: the
    /// session's observability handles are injected into every
    /// instrumented component, so concurrent runtimes in one process
    /// record independently.
    pub fn with_session(params: CostParams, session: crate::session::SessionCtx) -> Self {
        params.validate().expect("invalid cost parameters"); // gh-audit: allow(no-unwrap-in-lib) -- boot-time config validation; fail fast before any state exists
        let opts = &session.opts;
        let phys = if params.unified_pool {
            // MI300A-style single physical pool: `gpu_mem_bytes` is the
            // whole pool, shared by both nodes; `cpu_mem_bytes` is unused.
            PhysMem::new_unified(
                Bytes::new(params.gpu_mem_bytes),
                Bytes::new(params.gpu_driver_baseline),
            )
        } else {
            PhysMem::new(
                Bytes::new(params.cpu_mem_bytes),
                Bytes::new(params.gpu_mem_bytes),
                Bytes::new(params.gpu_driver_baseline),
            )
        };
        let os = Os::new(params.clone(), opts.os.clone())
            .with_obs(session.bus.clone(), session.perf.clone());
        let link = Link::new(
            params.c2c_h2d_bw,
            params.c2c_d2h_bw,
            params.c2c_random_eff,
            params.c2c_latency,
        )
        .with_obs(session.bus.clone());
        let smmu = Smmu::new(params.smmu_walk, params.ats_translate);
        let gpu_tlb =
            Tlb::new(params.gpu_tlb_entries).with_obs(session.bus.clone(), session.perf.clone());
        let gpu_pt = PageTable::new(params.gpu_page_size);
        // A unified pool has no second tier to migrate toward, so the
        // access-counter engine is hard-disabled regardless of options.
        let counters = AccessCounters::new(
            params.counter_region,
            params.counter_threshold,
            opts.auto_migration && !params.unified_pool,
        )
        .with_obs(session.bus.clone());
        let profiler = MemProfiler::new(opts.profiler_period);
        Self {
            params,
            clock: Clock::new(),
            phys,
            os,
            link,
            smmu,
            gpu_tlb,
            gpu_pt,
            counters,
            traffic: TrafficTotals::new(),
            profiler,
            uvm: UvmState::new(),
            streams: crate::streams::State::default(),
            allocs: HashMap::new(),
            advise_no_migrate: std::collections::HashSet::new(),
            pending_notifs: std::collections::VecDeque::new(),
            remote_touched: HashMap::new(),
            kernel_times: Vec::new(),
            timeline: Vec::new(),
            next_buf: 1,
            ctx_ready: false,
            kernel_seq: 0,
            session,
            migrated_pages: 0,
            placement_cache: HashMap::new(),
            l2_pool: None,
        }
    }

    /// Classifies the pages of a kernel span into placement runs, serving
    /// spans over buffers with stable placement from a per-buffer cache.
    ///
    /// The cache is keyed on the buffer id and validated against the
    /// system page table's placement epoch: any populate/unmap/remap
    /// anywhere bumps the epoch and invalidates every entry, so a hit
    /// guarantees the buffer's placement is exactly what was cached. A
    /// uniformly resident buffer then answers the whole span in O(1)
    /// without touching the page table.
    ///
    /// Uniformity is only ever *learned* from a span that covers the
    /// whole buffer and classifies to a single resident run — the cache
    /// never walks pages the kernel did not touch, so a miss costs
    /// exactly one span classification.
    pub(crate) fn classify_span_cached(
        &mut self,
        buf_id: u32,
        buf_range: gh_os::VaRange,
        vpns: gh_units::VpnRange,
    ) -> Vec<gh_mem::pagetable::PlacementRun> {
        let epoch = self.os.system_pt.placement_epoch();
        if let Some(e) = self.placement_cache.get(&buf_id) {
            if e.epoch == epoch {
                if let Some(node) = e.uniform {
                    self.session.perf.count(gh_perf::Ctr::FastSpans, 1);
                    return vec![(vpns, Some(node))];
                }
                return self.os.system_pt.classify_runs(vpns);
            }
        }
        let runs = self.os.system_pt.classify_runs(vpns);
        let whole = self.os.system_pt.vpn_range(buf_range.addr, buf_range.len);
        if vpns == whole {
            let uniform = match runs.as_slice() {
                [(vr, Some(node))] if *vr == whole => Some(*node),
                _ => None,
            };
            self.placement_cache
                .insert(buf_id, PlacementEntry { epoch, uniform });
        }
        runs
    }

    /// Boots with the calibrated defaults and default options.
    pub fn default_gh200() -> Self {
        Self::new(CostParams::default(), RuntimeOptions::default())
    }

    // ---------------------------------------------------------- queries --

    /// Current virtual time (ns).
    pub fn now(&self) -> Ns {
        self.clock.now()
    }

    /// The cost model in force.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Options in force.
    pub fn options(&self) -> &RuntimeOptions {
        &self.session.opts
    }

    /// The session context this runtime runs under (trace bus, profiler,
    /// sanitizer flag, options).
    pub fn session(&self) -> &crate::session::SessionCtx {
        &self.session
    }

    /// Process RSS (CPU-resident system pages), as the profiler reports.
    pub fn rss(&self) -> u64 {
        self.os.rss()
    }

    /// GPU used memory, `nvidia-smi` style (driver baseline included).
    pub fn gpu_used(&self) -> u64 {
        self.phys.used(Node::Gpu).get()
    }

    /// Free GPU memory.
    pub fn gpu_free(&self) -> u64 {
        self.phys.free(Node::Gpu).get()
    }

    /// Immutable view of the OS (page table inspection in tests).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// Immutable view of the interconnect (cumulative byte counters).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Cumulative pages moved between memories over the machine's
    /// lifetime (state-level counter, available without tracing).
    pub fn migrated_pages(&self) -> u64 {
        self.migrated_pages
    }

    /// Builds the invariant sanitizer's view of the accounting state.
    /// `phase` labels the snapshot; `migration_supported` comes from the
    /// platform capability set the machine layer owns; `traced` must only
    /// be true when the bus was recording for the machine's whole
    /// lifetime (the conservation right-hand side is cumulative).
    pub fn sanitizer_snapshot<'a>(
        &'a self,
        phase: &'a str,
        migration_supported: bool,
        traced: bool,
    ) -> gh_units::sanitizer::Snapshot<'a> {
        let spt = &self.os.system_pt;
        let expected_cpu = spt.resident_bytes(Node::Cpu) + self.gpu_pt.resident_bytes(Node::Cpu);
        let expected_gpu = spt.resident_bytes(Node::Gpu)
            + self.gpu_pt.resident_bytes(Node::Gpu)
            + Bytes::new(self.params.gpu_driver_baseline);
        // The conservation right-hand side: bytes the semantic call sites
        // (UVM driver, access-counter driver, explicit copies) accounted
        // for on the bus — maintained independently of the link's own
        // bulk counters.
        let traced_h2d = traced.then(|| {
            Bytes::new(
                self.session
                    .bus
                    .counter_value("uvm.bytes_migrated_in")
                    .saturating_add(self.session.bus.counter_value("counters.bytes_migrated_in"))
                    .saturating_add(self.session.bus.counter_value("cuda.memcpy_bytes_h2d")),
            )
        });
        let traced_d2h = traced.then(|| {
            Bytes::new(
                self.session
                    .bus
                    .counter_value("uvm.bytes_migrated_out")
                    .saturating_add(self.session.bus.counter_value("cuda.memcpy_bytes_d2h")),
            )
        });
        gh_units::sanitizer::Snapshot {
            phase,
            now: self.now(),
            unified_pool: self.phys.is_unified(),
            cpu_capacity: self.phys.capacity(Node::Cpu),
            gpu_capacity: self.phys.capacity(Node::Gpu),
            cpu_used: self.phys.used(Node::Cpu),
            gpu_used: self.phys.used(Node::Gpu),
            expected_cpu_used: expected_cpu,
            expected_gpu_used: expected_gpu,
            bulk_h2d: self.link.bulk_bytes_h2d(),
            bulk_d2h: self.link.bulk_bytes_d2h(),
            traced_h2d,
            traced_d2h,
            migration_supported,
            migrated_pages: self.migrated_pages,
        }
    }

    /// Immutable view of the SMMU counters.
    pub fn smmu(&self) -> &Smmu {
        &self.smmu
    }

    /// Immutable view of the GPU TLB counters.
    pub fn gpu_tlb(&self) -> &Tlb {
        &self.gpu_tlb
    }

    /// Per-kernel durations in launch order.
    pub fn kernel_times(&self) -> &[(String, Ns)] {
        &self.kernel_times
    }

    /// Timeline events recorded so far (kernels, copies, context init).
    pub fn timeline(&self) -> &[gh_profiler::TraceEvent] {
        &self.timeline
    }

    /// Exports the timeline as Chrome-trace JSON (open in
    /// chrome://tracing or Perfetto).
    pub fn export_chrome_trace(&self) -> String {
        gh_profiler::to_chrome_json(&self.timeline)
    }

    pub(crate) fn trace(&mut self, name: &str, cat: &'static str, start: Ns) {
        let dur = self.now().saturating_sub(start);
        // Mirror onto the observability bus so exported traces carry the
        // same intervals without a second bookkeeping path.
        self.session.bus.span_closed(name, cat, start);
        self.timeline.push(gh_profiler::TraceEvent {
            name: name.to_string(),
            cat,
            start,
            dur,
        });
    }

    /// Total access-counter notifications raised so far.
    pub fn notifications(&self) -> u64 {
        self.counters.total_notifications()
    }

    /// Consumes the runtime, returning the profiler sample series.
    pub fn into_samples(self) -> Vec<gh_profiler::Sample> {
        self.profiler.finish()
    }

    /// Peak GPU usage observed by the profiler so far.
    pub fn peak_gpu(&self) -> u64 {
        self.profiler.peak_gpu()
    }

    /// Peak RSS observed by the profiler so far.
    pub fn peak_rss(&self) -> u64 {
        self.profiler.peak_rss()
    }

    // ------------------------------------------------------- time/profile --

    /// Advances the clock and feeds the profiler.
    pub(crate) fn tick(&mut self, dt: Ns) {
        self.clock.advance(dt);
        self.session.bus.set_now(self.clock.now());
        self.observe();
    }

    pub(crate) fn observe(&mut self) {
        self.profiler.observe(
            self.clock.now(),
            self.os.rss(),
            self.phys.used(Node::Gpu).get(),
        );
    }

    /// Charges the one-time GPU context initialization if not yet paid.
    /// Called from every CUDA API entry point; system-allocated memory
    /// never calls CUDA APIs, so pure-system applications pay this at
    /// their first kernel launch (paper §4).
    pub(crate) fn ensure_ctx(&mut self) {
        if !self.ctx_ready {
            self.ctx_ready = true;
            let start = self.now();
            let dt = self.params.ctx_init;
            self.tick(dt);
            self.trace("cuda context init", "runtime", start);
        }
    }

    /// Whether the GPU context has been initialized yet.
    pub fn ctx_ready(&self) -> bool {
        self.ctx_ready
    }

    /// Explicit GPU context initialization (the `cudaFree(0)` idiom).
    /// The Rodinia harness does this during its first phase in every
    /// version; pure system-memory applications that skip it pay the
    /// cost at their first kernel launch instead (paper §4).
    pub fn cuda_init(&mut self) {
        self.ensure_ctx();
    }

    // ------------------------------------------------------- allocation --

    fn register(&mut self, range: gh_os::VaRange, kind: BufKind, tag: &str) -> Buffer {
        let id = self.next_buf;
        self.next_buf += 1;
        let buf = Buffer { id, range, kind };
        self.allocs.insert(id, (buf, tag.to_string()));
        buf
    }

    /// `malloc`: system-allocated memory. Lazy; no CUDA context involved.
    pub fn malloc_system(&mut self, bytes: Bytes, tag: &str) -> Buffer {
        let (range, cost) = self.os.mmap(bytes.get(), VmaKind::System, tag);
        self.tick(cost);
        self.register(range, BufKind::System, tag)
    }

    /// `malloc` + `set_mempolicy`: system-allocated memory with an
    /// explicit NUMA placement policy (e.g. `numactl --membind=gpu`).
    pub fn malloc_system_with_policy(
        &mut self,
        bytes: Bytes,
        policy: gh_os::NumaPolicy,
        tag: &str,
    ) -> Buffer {
        let (range, cost) = self
            .os
            .mmap_with_policy(bytes, VmaKind::System, policy, tag);
        self.tick(cost);
        self.register(range, BufKind::System, tag)
    }

    /// `numa_alloc_onnode`: system memory eagerly populated on `node`
    /// (Table 1's NUMA allocation interface).
    pub fn numa_alloc_onnode(&mut self, bytes: Bytes, node: Node, tag: &str) -> Buffer {
        let (range, cost) = self.os.numa_alloc_onnode(bytes, node, tag, &mut self.phys);
        self.tick(cost);
        self.register(range, BufKind::System, tag)
    }

    /// `cudaMallocManaged`: unified managed memory. Lazy.
    pub fn cuda_malloc_managed(&mut self, bytes: Bytes, tag: &str) -> Buffer {
        self.ensure_ctx();
        let (range, cost) = self.os.mmap(bytes.get(), VmaKind::Managed, tag);
        self.tick(cost + self.params.cuda_malloc_managed_fixed);
        self.register(range, BufKind::Managed, tag)
    }

    /// `cudaMalloc`: GPU-only memory, eagerly backed by HBM frames in the
    /// GPU-exclusive page table (2 MiB pages).
    pub fn cuda_malloc(&mut self, bytes: Bytes, tag: &str) -> Result<Buffer, OutOfMemory> {
        self.ensure_ctx();
        let page = self.params.gpu_page();
        let rounded = bytes.pages_ceil(page) * page;
        if self.phys.free(Node::Gpu) < rounded {
            return Err(OutOfMemory {
                node: Node::Gpu,
                requested: rounded,
                free: self.phys.free(Node::Gpu),
            });
        }
        let (range, _) = self.os.mmap(rounded.get(), VmaKind::DeviceOnly, tag);
        let vpns = self.gpu_pt.vpn_range(range.addr, range.len);
        let n_pages = vpns.count();
        for vpn in vpns {
            let frame = self
                .phys
                .alloc(Node::Gpu, page.bytes())
                .expect("free space was checked above"); // gh-audit: allow(no-unwrap-in-lib) -- free space checked by the branch guard above
            self.gpu_pt.populate(vpn, Node::Gpu, frame);
        }
        let dt = self.params.cuda_malloc_fixed
            + n_pages
                .get()
                .saturating_mul(self.params.cuda_malloc_per_page);
        self.tick(dt);
        Ok(self.register(range, BufKind::Device, tag))
    }

    /// `cudaMallocHost`: pinned CPU memory, populated eagerly.
    pub fn cuda_malloc_host(&mut self, bytes: Bytes, tag: &str) -> Buffer {
        self.ensure_ctx();
        let (range, mmap_cost) = self.os.mmap(bytes.get(), VmaKind::Pinned, tag);
        let (pin_cost, _) = self.os.host_register(range, &mut self.phys);
        self.tick(mmap_cost + pin_cost + self.params.cuda_malloc_fixed);
        self.register(range, BufKind::Pinned, tag)
    }

    /// Frees any buffer, dispatching on its kind. Returns the
    /// de-allocation time (also charged to the clock).
    pub fn free(&mut self, buf: Buffer) -> Ns {
        self.allocs
            .remove(&buf.id)
            .unwrap_or_else(|| panic!("double free or unknown buffer {}", buf.id)); // gh-audit: allow(no-unwrap-in-lib) -- double free is a caller bug; fail fast like the driver
        let dt = match buf.kind {
            BufKind::Device => {
                let page = self.params.gpu_page();
                let vpns = self.gpu_pt.vpn_range(buf.range.addr, buf.range.len);
                let removed = self.gpu_pt.unmap_range(vpns);
                for (vpn, pte) in &removed {
                    self.phys.release(pte.node, page.bytes());
                    self.gpu_tlb.invalidate(crate::kernel::tlb_key_gpu(*vpn));
                }
                // Release the VA without system-page teardown (no system
                // PTEs were ever created for a device-only VMA).
                self.os.munmap(buf.range, &mut self.phys);
                self.params.cuda_free_fixed
            }
            BufKind::System => self.os.munmap(buf.range, &mut self.phys),
            BufKind::Managed | BufKind::Pinned => {
                self.uvm.forget_range(buf.range);
                let os_cost = self.os.munmap(buf.range, &mut self.phys);
                self.gpu_tlb
                    .invalidate_range(self.os.system_pt.vpn_range(buf.range.addr, buf.range.len));
                os_cost + self.params.cuda_free_fixed
            }
        };
        self.tick(dt);
        dt
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> usize {
        self.allocs.len()
    }

    /// Tag of a live buffer.
    pub fn buffer_tag(&self, id: u32) -> Option<&str> {
        self.allocs.get(&id).map(|(_, t)| t.as_str())
    }

    // ------------------------------------------------------------ copies --

    /// `cudaMemcpy`-style explicit copy between a host-side buffer
    /// (system/pinned/managed) and a device buffer, in either direction.
    /// `len` bytes from `src_off` in `src` to `dst_off` in `dst`.
    pub fn memcpy(
        &mut self,
        dst: &Buffer,
        dst_off: u64,
        src: &Buffer,
        src_off: u64,
        len: u64,
    ) -> Ns {
        self.ensure_ctx();
        let _perf = self.session.perf.span("memcpy");
        self.session.perf.count(gh_perf::Ctr::Memcpys, 1);
        assert!(src_off + len <= src.len(), "memcpy src out of range");
        assert!(dst_off + len <= dst.len(), "memcpy dst out of range");
        let dir = match (src.kind, dst.kind) {
            (BufKind::Device, BufKind::Device) => None,
            (_, BufKind::Device) => Some(Direction::H2D),
            (BufKind::Device, _) => Some(Direction::D2H),
            _ => None, // host-to-host
        };
        let mut dt = self.params.memcpy_fixed;
        // Source/destination host pages must exist; copying from an
        // untouched region faults it in first (reads zeros), copying *to*
        // an untouched host region first-touches it on the CPU.
        for b in [src, dst] {
            if b.kind != BufKind::Device {
                let off = if std::ptr::eq(b, src) {
                    src_off
                } else {
                    dst_off
                };
                let (fault_cost, _) = self
                    .os
                    .touch_cpu_range(b.range.slice(off, len), &mut self.phys);
                dt = dt.saturating_add(fault_cost);
            }
        }
        dt = dt.saturating_add(if self.params.unified_pool {
            // Single pool: every "copy" is HBM-to-HBM; no interconnect hop.
            CostParams::transfer_ns(Bytes::new(len), self.params.hbm_bw)
        } else {
            match dir {
                Some(d) => self.link.bulk(Bytes::new(len), d),
                None => CostParams::transfer_ns(Bytes::new(len), self.params.hbm_bw).max(
                    CostParams::transfer_ns(Bytes::new(len), self.params.lpddr_bw),
                ),
            }
        });
        let start = self.now();
        self.tick(dt);
        let label = match dir {
            Some(Direction::H2D) => "memcpy H2D",
            Some(Direction::D2H) => "memcpy D2H",
            None => "memcpy",
        };
        self.trace(label, "copy", start);
        if self.session.bus.is_on() {
            if let (Some(d), false) = (dir, self.params.unified_pool) {
                let page = self.os.system_pt.page_size();
                self.session.bus.emit(gh_trace::Event::Migration {
                    engine: gh_trace::Engine::Memcpy,
                    dir: match d {
                        Direction::H2D => gh_trace::Dir::H2D,
                        Direction::D2H => gh_trace::Dir::D2H,
                    },
                    pages: len.div_ceil(page),
                    bytes: len,
                });
                // Direction-split counters feed the sanitizer's link
                // conservation check: bulk link bytes must equal the sum
                // of bus-accounted migrations and explicit copies.
                self.session.bus.count(
                    match d {
                        Direction::H2D => "cuda.memcpy_bytes_h2d",
                        Direction::D2H => "cuda.memcpy_bytes_d2h",
                    },
                    len,
                );
            }
            self.session.bus.count("cuda.memcpys", 1);
            self.session.bus.count("cuda.memcpy_bytes", len);
        }
        dt
    }

    /// `cudaMemAdvise` hints (the software guidance evaluated by Chien
    /// et al., reference 6 of the paper's related work). Hints steer the two
    /// migration engines:
    ///
    /// * `PreferredLocation(node)` — sets the VMA's NUMA policy so first
    ///   touches land on `node`, and (for `Cpu`) suppresses
    ///   counter-based migration away from it;
    /// * `ReadMostly` — suppresses migration entirely (coherent remote
    ///   reads are cheap; migrating a read-shared range would thrash).
    pub fn cuda_mem_advise(&mut self, buf: &Buffer, advice: MemAdvise) {
        assert!(
            matches!(buf.kind, BufKind::System | BufKind::Managed),
            "cudaMemAdvise applies to unified memory"
        );
        match advice {
            MemAdvise::PreferredLocation(node) => {
                self.os
                    .set_policy(buf.range, gh_os::NumaPolicy::Preferred(node));
                if node == Node::Cpu {
                    self.advise_no_migrate.insert(buf.range.addr);
                }
            }
            MemAdvise::ReadMostly => {
                self.advise_no_migrate.insert(buf.range.addr);
            }
            MemAdvise::Clear => {
                self.os.set_policy(buf.range, gh_os::NumaPolicy::FirstTouch);
                self.advise_no_migrate.remove(&buf.range.addr);
            }
        }
        self.tick(1_500);
    }

    /// Whether migration is advised off for the allocation containing
    /// `addr`.
    pub(crate) fn migration_advised_off(&self, addr: u64) -> bool {
        self.os
            .vma_at(addr)
            .is_some_and(|v| self.advise_no_migrate.contains(&v.range.addr))
    }

    /// `cudaMemcpy2D`: copies `rows` rows of `row_bytes` with independent
    /// source/destination pitches. Cost equals the dense copy of the
    /// payload plus a per-row fixed overhead when rows are strided.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_2d(
        &mut self,
        dst: &Buffer,
        dst_off: u64,
        dst_pitch: u64,
        src: &Buffer,
        src_off: u64,
        src_pitch: u64,
        row_bytes: Bytes,
        rows: u64,
    ) -> Ns {
        let _perf = self.session.perf.span("memcpy_2d");
        self.session.perf.count(gh_perf::Ctr::Memcpys, 1);
        let row_bytes = row_bytes.get();
        assert!(
            row_bytes <= dst_pitch && row_bytes <= src_pitch,
            "pitch < row"
        );
        assert!(
            dst_off + dst_pitch * rows.saturating_sub(1) + row_bytes <= dst.len(),
            "memcpy_2d dst out of range"
        );
        assert!(
            src_off + src_pitch * rows.saturating_sub(1) + row_bytes <= src.len(),
            "memcpy_2d src out of range"
        );
        let payload = row_bytes * rows;
        let mut dt = self.memcpy(dst, dst_off, src, src_off, payload.min(src.len() - src_off));
        if row_bytes != src_pitch || row_bytes != dst_pitch {
            let per_row = 200 * rows; // DMA descriptor per strided row
            self.tick(per_row);
            dt = dt.saturating_add(per_row);
        }
        dt
    }

    /// `cudaMemset`: fills `[off, off+len)` of a device buffer at HBM
    /// bandwidth (runs on the copy/compute engines synchronously here).
    pub fn cuda_memset(&mut self, buf: &Buffer, off: u64, len: u64) -> Ns {
        self.ensure_ctx();
        assert_eq!(buf.kind, BufKind::Device, "cuda_memset is a device API");
        assert!(off + len <= buf.len(), "memset out of range");
        let dt = self.params.memcpy_fixed / 2
            + CostParams::transfer_ns(Bytes::new(len), self.params.hbm_bw);
        let start = self.now();
        self.tick(dt);
        self.trace("memset", "copy", start);
        dt
    }

    /// `cudaHostRegister`: pre-populates (and pins) a system buffer's
    /// pages on the CPU so GPU access never ATS-faults (§5.1.2 strategy).
    pub fn cuda_host_register(&mut self, buf: &Buffer) -> Ns {
        self.ensure_ctx();
        let (cost, _) = self.os.host_register(buf.range, &mut self.phys);
        self.tick(cost);
        cost
    }

    /// `cudaDeviceSynchronize`: waits for every stream, then pays the
    /// fixed synchronization cost.
    pub fn device_synchronize(&mut self) {
        self.all_streams_synchronize();
        self.tick(2_000);
    }

    // -------------------------------------------------------- host access --

    /// CPU-side sequential write of `[off, off+len)` (initialization
    /// phase). First touch faults pages onto the CPU node; writes to
    /// GPU-resident pages go remotely over NVLink-C2C (system) or migrate
    /// the block back (managed).
    pub fn cpu_write(&mut self, buf: &Buffer, off: u64, len: u64) {
        self.host_access(buf, off, len, true);
    }

    /// CPU-side sequential read (e.g. result verification).
    pub fn cpu_read(&mut self, buf: &Buffer, off: u64, len: u64) {
        self.host_access(buf, off, len, false);
    }

    fn host_access(&mut self, buf: &Buffer, off: u64, len: u64, write: bool) {
        assert!(off + len <= buf.len(), "host access out of range");
        assert!(
            buf.kind != BufKind::Device,
            "host cannot access cudaMalloc memory"
        );
        if len == 0 {
            return;
        }
        let span = buf.range.slice(off, len);
        let block = self.params.counter_region; // 2 MiB processing chunks
        let mut addr = span.addr;
        while addr < span.end() {
            let chunk_end = ((addr / block) + 1) * block;
            let chunk = gh_os::VaRange {
                addr,
                len: chunk_end.min(span.end()) - addr,
            };
            let dt = self.host_access_chunk(buf, chunk, write);
            self.tick(dt);
            addr = chunk.end();
        }
    }

    fn host_access_chunk(&mut self, buf: &Buffer, chunk: gh_os::VaRange, write: bool) -> Ns {
        let mut dt: Ns = 0;
        let line = self.params.cpu_cacheline;
        if self.params.unified_pool {
            // One physical pool: there is no remote tier to retrieve from
            // and no cacheline traffic over an inter-tier link. First touch
            // maps pages in the shared pool; the host then streams at its
            // init bandwidth.
            let (fault, _) = self.os.touch_cpu_range(chunk, &mut self.phys);
            dt = dt.saturating_add(fault);
            if write {
                let vpns = self.os.system_pt.vpn_range(chunk.addr, chunk.len);
                self.os.system_pt.mark_dirty_range(vpns);
            }
            dt = dt.saturating_add(CostParams::transfer_ns(
                Bytes::new(chunk.len),
                self.params.cpu_init_bw,
            ));
            return dt;
        }
        match buf.kind {
            BufKind::Managed => {
                // CPU access to GPU-resident managed memory retrieves the
                // pages (on-demand migration back to CPU).
                let vpns = self.os.system_pt.vpn_range(chunk.addr, chunk.len);
                let gpu_pages = self.os.system_pt.count_resident_in(vpns, Node::Gpu);
                if !gpu_pages.is_zero() {
                    dt = dt.saturating_add(self.uvm_retrieve_to_cpu(chunk));
                }
                let (fault, _) = self.os.touch_cpu_range(chunk, &mut self.phys);
                dt = dt.saturating_add(fault);
                dt = dt.saturating_add(CostParams::transfer_ns(
                    Bytes::new(chunk.len),
                    self.params.cpu_init_bw,
                ));
            }
            BufKind::System => {
                // Faults only for unpopulated pages; GPU-resident pages
                // (including pages a NUMA policy just placed there) are
                // accessed remotely at 64 B granularity, *without*
                // migration (coherent C2C).
                let spt = self.os.system_pt.page_size();
                let mut remote_bytes: u64 = 0;
                let vpns = self.os.system_pt.vpn_range(chunk.addr, chunk.len);
                // Batched walk: resident runs are summed per run instead of
                // probed per page; only unpopulated runs fault per page
                // (placement policy and frame allocation are per-page).
                for (vr, state) in self.os.system_pt.classify_runs(vpns) {
                    match state {
                        Some(Node::Gpu) => {
                            remote_bytes =
                                remote_bytes.saturating_add(vr.count().get().saturating_mul(spt));
                        }
                        Some(Node::Cpu) => {}
                        None => {
                            for vpn in vr {
                                let o = self.os.touch_cpu(vpn, &mut self.phys);
                                dt = dt.saturating_add(o.cost);
                                if o.placed == Node::Gpu {
                                    remote_bytes = remote_bytes.saturating_add(spt);
                                }
                            }
                        }
                    }
                }
                if write {
                    self.os.system_pt.mark_dirty_range(vpns);
                }
                if remote_bytes > 0 {
                    let dir = if write {
                        Direction::H2D
                    } else {
                        Direction::D2H
                    };
                    dt = dt.saturating_add(self.link.cacheline_stream(
                        Lines::new(remote_bytes / line),
                        Bytes::new(line),
                        dir,
                    ));
                }
                // The single-threaded host loop generates/consumes every
                // byte at cpu_init_bw regardless of where pages live; the
                // remote line traffic above is additional stall.
                dt = dt.saturating_add(CostParams::transfer_ns(
                    Bytes::new(chunk.len),
                    self.params.cpu_init_bw,
                ));
            }
            BufKind::Pinned => {
                dt = dt.saturating_add(CostParams::transfer_ns(
                    Bytes::new(chunk.len),
                    self.params.cpu_init_bw,
                ));
            }
            BufKind::Device => unreachable!("checked above"), // gh-audit: allow(no-unwrap-in-lib) -- device buffers are rejected at function entry
        }
        dt
    }

    // ----------------------------------------------------------- kernels --

    /// Launches a kernel: returns a recorder the kernel body uses to
    /// declare its memory accesses and compute work. The launch overhead
    /// and (for the first launch) context initialization are charged here.
    pub fn launch(&mut self, name: &str) -> Kernel<'_> {
        self.ensure_ctx();
        self.session.perf.count(gh_perf::Ctr::KernelLaunches, 1);
        let launch_cost = self.params.kernel_launch;
        self.tick(launch_cost);
        self.kernel_seq += 1;
        Kernel::new(self, name)
    }

    // -------------------------------------------------------- prefetch --

    /// `cudaMemPrefetchAsync`: bulk-migrates a managed range toward a
    /// node, evicting LRU managed blocks if the GPU is full. No fault
    /// costs — this is the §6/§7 optimization path.
    pub fn prefetch(&mut self, buf: &Buffer, off: u64, len: u64, to: Node) -> Ns {
        self.ensure_ctx();
        assert_eq!(
            buf.kind,
            BufKind::Managed,
            "prefetch is a managed-memory API"
        );
        if self.params.unified_pool {
            // Nothing to move in a single physical pool: the API call
            // costs its fixed overhead and is otherwise a no-op.
            let dt = self.params.prefetch_fixed;
            self.tick(dt);
            return dt;
        }
        let span = buf.range.slice(off, len);

        self.uvm_prefetch_range(span, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::{KIB, MIB};

    fn rt() -> Runtime {
        Runtime::default_gh200()
    }

    #[test]
    fn malloc_system_skips_ctx_init() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(MIB), "x");
        assert!(!r.ctx_ready());
        assert!(r.now() < 1_000_000, "no 250 ms ctx charge");
        assert_eq!(b.kind, BufKind::System);
        assert_eq!(b.len(), MIB);
    }

    #[test]
    fn cuda_apis_charge_ctx_once() {
        let mut r = rt();
        let t0 = r.now();
        r.cuda_malloc_managed(Bytes::new(MIB), "a");
        let after_first = r.now();
        assert!(after_first - t0 >= r.params().ctx_init);
        r.cuda_malloc_managed(Bytes::new(MIB), "b");
        assert!(r.now() - after_first < r.params().ctx_init);
    }

    #[test]
    fn cuda_malloc_backs_with_hbm_eagerly() {
        let mut r = rt();
        let before = r.gpu_used();
        let b = r.cuda_malloc(Bytes::new(10 * MIB), "d").unwrap();
        assert_eq!(r.gpu_used() - before, 10 * MIB);
        assert_eq!(b.kind, BufKind::Device);
        r.free(b);
        assert_eq!(r.gpu_used(), before);
    }

    #[test]
    fn cuda_malloc_oom_is_an_error() {
        let mut r = rt();
        let free = r.gpu_free();
        let b = r.cuda_malloc(Bytes::new(free - 2 * MIB), "big").unwrap();
        assert!(r.cuda_malloc(Bytes::new(4 * MIB), "more").is_err());
        r.free(b);
        assert!(r.cuda_malloc(Bytes::new(4 * MIB), "now fits").is_ok());
    }

    #[test]
    fn gpu_used_includes_driver_baseline() {
        let r = rt();
        assert_eq!(r.gpu_used(), r.params().gpu_driver_baseline);
    }

    #[test]
    fn cpu_write_populates_system_pages() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(256 * KIB), "x");
        assert_eq!(r.rss(), 0);
        r.cpu_write(&b, 0, 256 * KIB);
        assert_eq!(r.rss(), 256 * KIB);
        assert!(!r.ctx_ready(), "pure host work never initializes CUDA");
    }

    #[test]
    fn memcpy_h2d_moves_bytes_over_link() {
        let mut r = rt();
        let h = r.malloc_system(Bytes::new(MIB), "h");
        r.cpu_write(&h, 0, MIB);
        let d = r.cuda_malloc(Bytes::new(MIB), "d").unwrap();
        let before = r.link().bytes_h2d();
        r.memcpy(&d, 0, &h, 0, MIB);
        assert_eq!(r.link().bytes_h2d() - before, Bytes::new(MIB));
    }

    #[test]
    fn memcpy_faults_in_untouched_host_source() {
        let mut r = rt();
        let h = r.malloc_system(Bytes::new(MIB), "h");
        let d = r.cuda_malloc(Bytes::new(MIB), "d").unwrap();
        r.memcpy(&d, 0, &h, 0, MIB); // no prior cpu_write
        assert_eq!(r.rss(), MIB, "memcpy populated the source pages");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn memcpy_oob_panics() {
        let mut r = rt();
        let h = r.malloc_system(Bytes::new(MIB), "h");
        let d = r.cuda_malloc(Bytes::new(MIB), "d").unwrap();
        r.memcpy(&d, 0, &h, 512 * KIB, MIB);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(KIB), "x");
        r.free(b);
        r.free(b);
    }

    #[test]
    fn free_system_scales_with_touched_pages() {
        let mut r4 = Runtime::new(CostParams::with_4k_pages(), RuntimeOptions::default());
        let b = r4.malloc_system(Bytes::new(16 * MIB), "x");
        r4.cpu_write(&b, 0, 16 * MIB);
        let dt_4k = r4.free(b);

        let mut r64 = Runtime::new(CostParams::with_64k_pages(), RuntimeOptions::default());
        let b = r64.malloc_system(Bytes::new(16 * MIB), "x");
        r64.cpu_write(&b, 0, 16 * MIB);
        let dt_64k = r64.free(b);
        let ratio = dt_4k as f64 / dt_64k as f64;
        assert!(ratio > 8.0, "Fig 6 dealloc ratio, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "host cannot access")]
    fn host_access_to_device_buffer_panics() {
        let mut r = rt();
        let d = r.cuda_malloc(Bytes::new(MIB), "d").unwrap();
        r.cpu_write(&d, 0, 16);
    }

    #[test]
    fn host_register_prevents_later_faults() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(4 * MIB), "x");
        r.cuda_host_register(&b);
        assert_eq!(r.rss(), 4 * MIB);
        assert_eq!(r.os().cpu_faults(), 0, "bulk path, not the fault path");
    }

    #[test]
    fn pinned_alloc_is_cpu_resident() {
        let mut r = rt();
        let b = r.cuda_malloc_host(Bytes::new(MIB), "pinned");
        assert_eq!(b.kind, BufKind::Pinned);
        assert_eq!(r.rss(), MIB);
    }

    #[test]
    fn profiler_sees_rss_ramp() {
        let mut r = rt();
        let b = r.malloc_system(Bytes::new(8 * MIB), "x");
        r.cpu_write(&b, 0, 8 * MIB);
        let peak = r.profiler.peak_rss();
        assert_eq!(peak, 8 * MIB);
        let samples = r.into_samples();
        assert!(samples.len() > 1, "ramp must produce multiple samples");
        // RSS is non-decreasing during a pure init phase.
        assert!(samples.windows(2).all(|w| w[0].rss <= w[1].rss));
    }
}
