//! CUDA streams: asynchronous copies and kernels with engine-level
//! overlap.
//!
//! The GH200 overlaps H2D copies, D2H copies and kernel execution on
//! three independent engines. This module models exactly that: each
//! enqueued operation starts at
//! `max(stream tail, engine free, current time)` and occupies its engine
//! for the operation's duration; synchronization advances the virtual
//! clock to the relevant tail. This is what makes the paper's "original
//! version implements a sophisticated data movement pipeline and
//! represents the ideal performance" (§4) reproducible: Qiskit-Aer's
//! chunked host-exchange pipeline genuinely overlaps its transfers with
//! compute.
//!
//! Restriction: asynchronous operations are only allowed on `Device` and
//! `Pinned` buffers — the same rule real CUDA imposes for true async
//! copies (pageable memory degrades to synchronous). Unified buffers
//! fault through the OS/driver models, which are synchronous by design.

// gh-audit: allow-file(no-unwrap-in-lib) -- stream/event handles are minted by this module and launch preconditions are validated fail-fast, mirroring CUDA driver aborts
use gh_mem::clock::Ns;
use gh_mem::link::Direction;
use gh_mem::params::CostParams;
use gh_units::{ns_from_f64, Bytes};
use std::collections::BTreeMap;

use crate::buffer::{BufKind, Buffer};
use crate::runtime::Runtime;

/// Handle to a created stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    raw: u32,
}

/// The three hardware engines async work can occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Engine {
    CopyH2d,
    CopyD2h,
    Compute,
}

/// Handle to a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    raw: u32,
}

/// Per-runtime stream state.
#[derive(Debug, Default)]
pub struct StreamState {
    next: u32,
    /// Completion time of the last operation per stream.
    tails: BTreeMap<u32, Ns>,
    /// Time each engine becomes free.
    engines: BTreeMap<Engine, Ns>,
    next_event: u32,
    /// Timestamp each event resolves to (the recording stream's tail).
    events: BTreeMap<u32, Ns>,
}

impl StreamState {
    /// Latest completion time across all streams.
    fn max_tail(&self) -> Ns {
        self.tails.values().copied().max().unwrap_or(0)
    }
}

impl Runtime {
    /// `cudaStreamCreate`.
    pub fn create_stream(&mut self) -> StreamId {
        self.ensure_ctx();
        let id = self.streams.next;
        self.streams.next += 1;
        self.streams.tails.insert(id, self.now());
        self.tick(1_000);
        StreamId { raw: id }
    }

    fn enqueue(&mut self, stream: StreamId, engine: Engine, duration: Ns) -> Ns {
        let now = self.now();
        let tail = *self
            .streams
            .tails
            .get(&stream.raw)
            .unwrap_or_else(|| panic!("unknown stream {stream:?}"));
        let free = self.streams.engines.get(&engine).copied().unwrap_or(0);
        let start = now.max(tail).max(free);
        let end = start + duration;
        self.streams.tails.insert(stream.raw, end);
        self.streams.engines.insert(engine, end);
        end
    }

    /// `cudaMemcpyAsync`: enqueues a copy on `stream` without blocking.
    /// Both buffers must be Device or Pinned (true-async rule).
    pub fn memcpy_async(
        &mut self,
        dst: &Buffer,
        dst_off: u64,
        src: &Buffer,
        src_off: u64,
        len: u64,
        stream: StreamId,
    ) {
        self.ensure_ctx();
        assert!(src_off + len <= src.len(), "memcpy_async src out of range");
        assert!(dst_off + len <= dst.len(), "memcpy_async dst out of range");
        for b in [src, dst] {
            assert!(
                matches!(b.kind, BufKind::Device | BufKind::Pinned),
                "memcpy_async requires device or pinned memory (got {:?})",
                b.kind
            );
        }
        let (engine, dur) = match (src.kind, dst.kind) {
            (BufKind::Device, BufKind::Device) => (
                Engine::Compute, // D2D copies ride the compute engine
                CostParams::transfer_ns(Bytes::new(len), self.params.hbm_bw),
            ),
            (_, BufKind::Device) => {
                self.session.bus.count("cuda.memcpy_bytes_h2d", len);
                (
                    Engine::CopyH2d,
                    self.link.bulk(Bytes::new(len), Direction::H2D),
                )
            }
            (BufKind::Device, _) => {
                self.session.bus.count("cuda.memcpy_bytes_d2h", len);
                (
                    Engine::CopyD2h,
                    self.link.bulk(Bytes::new(len), Direction::D2H),
                )
            }
            _ => (
                Engine::CopyH2d,
                CostParams::transfer_ns(Bytes::new(len), self.params.lpddr_bw),
            ),
        };
        let dur = dur + self.params.memcpy_fixed / 4; // async submit is cheap
        self.enqueue(stream, engine, dur);
        self.tick(500); // host-side enqueue cost
    }

    /// Enqueues a kernel on `stream`: dense reads/writes on device or
    /// pinned buffers plus compute work, overlapping with copies on
    /// other streams. Returns the operation's completion timestamp.
    pub fn launch_async(
        &mut self,
        name: &str,
        stream: StreamId,
        reads: &[(Buffer, u64, u64)],
        writes: &[(Buffer, u64, u64)],
        compute_units: u64,
    ) -> Ns {
        self.ensure_ctx();
        self.kernel_seq += 1;
        let mut traffic = gh_mem::traffic::KernelTraffic::default();
        let mut hbm = 0u64;
        let mut c2c_r = 0u64;
        let mut c2c_w = 0u64;
        for (b, off, len) in reads {
            assert!(off + len <= b.len(), "async read out of range");
            match b.kind {
                BufKind::Device => {
                    hbm = hbm.saturating_add(*len);
                    traffic.hbm_read = traffic.hbm_read.saturating_add(*len);
                }
                BufKind::Pinned => {
                    c2c_r = c2c_r.saturating_add(*len);
                    traffic.c2c_read = traffic.c2c_read.saturating_add(*len);
                }
                _ => panic!("launch_async requires device or pinned buffers"),
            }
            traffic.l1l2 = traffic.l1l2.saturating_add(*len);
        }
        for (b, off, len) in writes {
            assert!(off + len <= b.len(), "async write out of range");
            match b.kind {
                BufKind::Device => {
                    hbm = hbm.saturating_add(*len);
                    traffic.hbm_write = traffic.hbm_write.saturating_add(*len);
                }
                BufKind::Pinned => {
                    c2c_w = c2c_w.saturating_add(*len);
                    traffic.c2c_write = traffic.c2c_write.saturating_add(*len);
                }
                _ => panic!("launch_async requires device or pinned buffers"),
            }
            traffic.l1l2 = traffic.l1l2.saturating_add(*len);
        }
        let p = &self.params;
        let mem = CostParams::transfer_ns(Bytes::new(hbm), p.hbm_bw)
            + CostParams::transfer_ns(Bytes::new(c2c_r), p.c2c_h2d_bw * p.c2c_stream_eff)
            + CostParams::transfer_ns(Bytes::new(c2c_w), p.c2c_d2h_bw * p.c2c_stream_eff);
        let compute = ns_from_f64((compute_units as f64 / p.gpu_throughput).ceil());
        let dur = p.kernel_launch + mem.max(compute);
        let end = self.enqueue(stream, Engine::Compute, dur);
        let name = format!("{}#{}", name, self.kernel_seq);
        self.traffic.push(&name, traffic);
        self.kernel_times.push((name, dur));
        self.tick(500);
        end
    }

    /// `cudaEventRecord`: marks the stream's current tail; the event
    /// "occurs" when all prior work on the stream completes.
    pub fn event_record(&mut self, stream: StreamId) -> EventId {
        let tail = *self
            .streams
            .tails
            .get(&stream.raw)
            .unwrap_or_else(|| panic!("unknown stream {stream:?}"));
        let id = self.streams.next_event;
        self.streams.next_event += 1;
        self.streams.events.insert(id, tail.max(self.now()));
        EventId { raw: id }
    }

    /// `cudaEventSynchronize`: blocks until the event has occurred.
    pub fn event_synchronize(&mut self, event: EventId) {
        let t = *self
            .streams
            .events
            .get(&event.raw)
            .unwrap_or_else(|| panic!("unknown event {event:?}"));
        if t > self.now() {
            let dt = t - self.now();
            self.tick(dt);
        }
    }

    /// `cudaEventElapsedTime`: nanoseconds between two events
    /// (`end - start`; panics if `end` precedes `start`).
    pub fn event_elapsed(&self, start: EventId, end: EventId) -> Ns {
        let s = self.streams.events[&start.raw];
        let e = self.streams.events[&end.raw];
        e.checked_sub(s)
            .expect("end event occurs before start event")
    }

    /// `cudaStreamWaitEvent`: makes `stream` wait for `event` (its next
    /// operation starts no earlier than the event's timestamp).
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        let t = self.streams.events[&event.raw];
        let tail = self
            .streams
            .tails
            .get_mut(&stream.raw)
            .unwrap_or_else(|| panic!("unknown stream {stream:?}"));
        *tail = (*tail).max(t);
    }

    /// `cudaStreamSynchronize`: blocks (advances the clock) until the
    /// stream's last operation completes.
    pub fn stream_synchronize(&mut self, stream: StreamId) {
        let tail = *self
            .streams
            .tails
            .get(&stream.raw)
            .unwrap_or_else(|| panic!("unknown stream {stream:?}"));
        if tail > self.now() {
            let dt = tail - self.now();
            self.tick(dt);
        }
    }

    /// Synchronizes every stream (the async half of
    /// `cudaDeviceSynchronize`).
    pub fn all_streams_synchronize(&mut self) {
        let tail = self.streams.max_tail();
        if tail > self.now() {
            let dt = tail - self.now();
            self.tick(dt);
        }
    }
}

pub(crate) use StreamState as State;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeOptions;
    use gh_mem::params::MIB;

    fn rt() -> Runtime {
        Runtime::new(CostParams::default(), RuntimeOptions::default())
    }

    #[test]
    fn independent_streams_overlap_copy_and_compute() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(32 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(32 * MIB), "d").unwrap();
        let s_copy = r.create_stream();
        let s_comp = r.create_stream();
        let t0 = r.now();

        // Serial reference: copy then kernel on one stream.
        r.memcpy_async(&d, 0, &h, 0, 32 * MIB, s_copy);
        r.stream_synchronize(s_copy);
        let serial = r.now() - t0;

        // Overlapped: same copy and an equally long independent kernel.
        let t1 = r.now();
        r.memcpy_async(&d, 0, &h, 0, 32 * MIB, s_copy);
        r.launch_async("k", s_comp, &[(d, 0, 32 * MIB)], &[], 32 * (1 << 20) * 9);
        r.all_streams_synchronize();
        let overlapped = r.now() - t1;
        // The kernel alone takes ~3.7 ms at 9000 units/ns... compute
        // dominates; total must be far below copy+kernel serialized.
        assert!(
            overlapped < serial + 4_000_000,
            "overlap lost: serial {serial}, overlapped {overlapped}"
        );
    }

    #[test]
    fn same_stream_operations_serialize() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(16 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(16 * MIB), "d").unwrap();
        let s = r.create_stream();
        let t0 = r.now();
        r.memcpy_async(&d, 0, &h, 0, 16 * MIB, s);
        r.memcpy_async(&h, 0, &d, 0, 16 * MIB, s);
        r.stream_synchronize(s);
        let elapsed = r.now() - t0;
        // H2D at 375 + D2H at 297 must be strictly additive (same stream),
        // even though they use different engines.
        let expect = (16.0 * 1048576.0 / 375.0 + 16.0 * 1048576.0 / 297.0) as u64;
        assert!(
            elapsed >= expect,
            "same-stream ops must serialize: {elapsed} < {expect}"
        );
    }

    #[test]
    fn copy_engines_are_independent_directions() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(32 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(32 * MIB), "d").unwrap();
        let s1 = r.create_stream();
        let s2 = r.create_stream();
        let t0 = r.now();
        r.memcpy_async(&d, 0, &h, 0, 32 * MIB, s1); // H2D engine
        r.memcpy_async(&h, 0, &d, 0, 32 * MIB, s2); // D2H engine
        r.all_streams_synchronize();
        let elapsed = r.now() - t0;
        let d2h_alone = (32.0 * 1048576.0 / 297.0) as u64;
        assert!(
            elapsed < d2h_alone + d2h_alone / 2,
            "opposite directions must overlap: {elapsed} vs {d2h_alone}"
        );
    }

    #[test]
    fn same_engine_contends() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(32 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(32 * MIB), "d").unwrap();
        let s1 = r.create_stream();
        let s2 = r.create_stream();
        let t0 = r.now();
        r.memcpy_async(&d, 0, &h, 0, 16 * MIB, s1);
        r.memcpy_async(&d, 16 * MIB, &h, 16 * MIB, 16 * MIB, s2);
        r.all_streams_synchronize();
        let elapsed = r.now() - t0;
        let both = (32.0 * 1048576.0 / 375.0) as u64;
        assert!(
            elapsed >= both,
            "same-direction copies share one engine: {elapsed} < {both}"
        );
    }

    #[test]
    #[should_panic(expected = "requires device or pinned")]
    fn async_copy_of_managed_memory_panics() {
        let mut r = rt();
        let m = r.cuda_malloc_managed(Bytes::new(MIB), "m");
        let d = r.cuda_malloc(Bytes::new(MIB), "d").unwrap();
        let s = r.create_stream();
        r.memcpy_async(&d, 0, &m, 0, MIB, s);
    }

    #[test]
    fn events_time_stream_work() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(16 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(16 * MIB), "d").unwrap();
        let s = r.create_stream();
        let e0 = r.event_record(s);
        r.memcpy_async(&d, 0, &h, 0, 16 * MIB, s);
        let e1 = r.event_record(s);
        r.event_synchronize(e1);
        let elapsed = r.event_elapsed(e0, e1);
        let expect = (16.0 * 1048576.0 / 375.0) as u64;
        assert!(
            elapsed >= expect && elapsed < expect * 2,
            "copy timing via events: {elapsed} vs {expect}"
        );
    }

    #[test]
    fn stream_wait_event_orders_cross_stream_work() {
        let mut r = rt();
        let h = r.cuda_malloc_host(Bytes::new(8 * MIB), "h");
        let d = r.cuda_malloc(Bytes::new(8 * MIB), "d").unwrap();
        let s1 = r.create_stream();
        let s2 = r.create_stream();
        r.memcpy_async(&d, 0, &h, 0, 8 * MIB, s1);
        let e = r.event_record(s1);
        // s2's kernel must not start before s1's copy finished.
        r.stream_wait_event(s2, e);
        let end = r.launch_async("k", s2, &[(d, 0, 8 * MIB)], &[], 0);
        let copy_done = {
            r.event_synchronize(e);
            r.now()
        };
        assert!(
            end >= copy_done,
            "kernel {end} must follow copy {copy_done}"
        );
    }

    #[test]
    fn stream_sync_is_idempotent() {
        let mut r = rt();
        let s = r.create_stream();
        r.stream_synchronize(s);
        let t = r.now();
        r.stream_synchronize(s);
        assert_eq!(r.now(), t);
    }
}
