//! The per-run session context: everything that used to be ambient.
//!
//! Before PR 9, a run's configuration and observability state were
//! process-wide — `thread_local!` collectors in `gh-trace`/`gh-perf`,
//! `OnceLock` env latches for the sanitizer and the reference-walk
//! toggle. Two runs with different options could not coexist in one
//! process, which blocked the concurrent job executor (`gh-jobs`).
//!
//! A [`SessionCtx`] bundles all of it per run:
//!
//! * the **trace bus** ([`gh_trace::Bus`]) — events, metrics, spans;
//! * the **self-profiler** ([`gh_perf::Perf`]) — host-time phases,
//!   spans, hot-path counters;
//! * the **sanitizer flag** — whether the machine layer arms the
//!   invariant sanitizer for this run;
//! * the **runtime options** ([`RuntimeOptions`]) — behavioural
//!   switches, including the reference-walk toggle that used to be the
//!   `GH_ACCESS_REF` env latch.
//!
//! The `Runtime` owns the context; components that emit (TLB, link,
//! access counters, OS) hold clones of the handles, injected at
//! construction. **Library code never reads `GH_*` environment
//! variables** (audit rule `no-ambient-state`): env vars are honored
//! only at the CLI/bench boundary, where they seed a [`SessionOptions`]
//! that is resolved into a `SessionCtx` here. See `docs/sessions.md`.

use crate::runtime::RuntimeOptions;

/// Boundary-level observability knobs for one run — what a CLI flag,
/// env var, or job spec can ask for, without dragging in
/// [`RuntimeOptions`] (which stays confined to the platform layers by
/// the `no-platform-leak` audit rule). Plain data: hashable into job
/// keys, cheap to clone across threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionOptions {
    /// Record the trace bus (events, metrics, spans).
    pub trace: bool,
    /// Event-ring capacity override (default
    /// [`gh_trace::DEFAULT_RING_CAPACITY`]).
    pub trace_capacity: Option<usize>,
    /// Arm the gh-perf self-profiler.
    pub perf: bool,
    /// Arm the invariant sanitizer. `None` = the build default
    /// (debug builds sanitize, release builds do not).
    pub sanitize: Option<bool>,
    /// Force the per-line reference access path instead of the batched
    /// fast core (differential testing/debugging; reports are
    /// bit-identical either way).
    pub access_ref: bool,
}

impl SessionOptions {
    /// Resolves the sanitizer flag: explicit request wins, otherwise
    /// debug builds sanitize and release builds do not (the same
    /// default the old `GH_SANITIZE` latch fell back to).
    pub fn sanitize_resolved(&self) -> bool {
        self.sanitize.unwrap_or(cfg!(debug_assertions))
    }
}

/// One run's context: options plus the observability state that used to
/// be ambient. Owned by the `Runtime` (and through it the `Machine`);
/// every instrumented component holds clones of the [`gh_trace::Bus`]
/// and [`gh_perf::Perf`] handles.
#[derive(Debug, Clone)]
pub struct SessionCtx {
    /// The run's trace bus (off unless the session asked for tracing).
    pub bus: gh_trace::Bus,
    /// The run's self-profiler (off unless the session asked for it).
    pub perf: gh_perf::Perf,
    /// Whether the machine layer arms the invariant sanitizer.
    pub sanitize: bool,
    /// Behavioural switches for the simulated run.
    pub opts: RuntimeOptions,
}

impl SessionCtx {
    /// A quiet session: no tracing, no profiling, build-default
    /// sanitizing. What `Runtime::new` uses.
    pub fn new(opts: RuntimeOptions) -> Self {
        Self {
            bus: gh_trace::Bus::off(),
            perf: gh_perf::Perf::off(),
            sanitize: cfg!(debug_assertions),
            opts,
        }
    }

    /// Resolves boundary-level [`SessionOptions`] into a live context.
    /// `so.access_ref` folds into the runtime options (either side may
    /// request the reference walk).
    pub fn with_options(mut opts: RuntimeOptions, so: &SessionOptions) -> Self {
        opts.access_ref = opts.access_ref || so.access_ref;
        Self {
            bus: match (so.trace, so.trace_capacity) {
                (false, _) => gh_trace::Bus::off(),
                (true, None) => gh_trace::Bus::on(),
                (true, Some(cap)) => gh_trace::Bus::with_capacity(cap),
            },
            perf: if so.perf {
                gh_perf::Perf::on()
            } else {
                gh_perf::Perf::off()
            },
            sanitize: so.sanitize_resolved(),
            opts,
        }
    }
}

impl Default for SessionCtx {
    fn default() -> Self {
        Self::new(RuntimeOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_session_records_nothing() {
        let s = SessionCtx::default();
        assert!(!s.bus.is_on());
        assert!(!s.perf.is_on());
    }

    #[test]
    fn options_arm_the_handles() {
        let so = SessionOptions {
            trace: true,
            perf: true,
            ..Default::default()
        };
        let s = SessionCtx::with_options(RuntimeOptions::default(), &so);
        assert!(s.bus.is_on());
        assert!(s.perf.is_on());
    }

    #[test]
    fn sanitize_default_tracks_build_profile() {
        let so = SessionOptions::default();
        assert_eq!(so.sanitize_resolved(), cfg!(debug_assertions));
        let on = SessionOptions {
            sanitize: Some(true),
            ..Default::default()
        };
        assert!(on.sanitize_resolved());
        let off = SessionOptions {
            sanitize: Some(false),
            ..Default::default()
        };
        assert!(!off.sanitize_resolved());
    }

    #[test]
    fn access_ref_folds_into_runtime_options() {
        let so = SessionOptions {
            access_ref: true,
            ..Default::default()
        };
        let s = SessionCtx::with_options(RuntimeOptions::default(), &so);
        assert!(s.opts.access_ref);
    }
}
