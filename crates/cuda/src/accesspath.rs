//! Access-path selection: batched fast core vs. per-line reference walk.
//!
//! The kernel access path has two implementations that must produce
//! bitwise-identical RunReports:
//!
//! * the **batched core** (default): classifies whole `VpnRange`s into
//!   resident/faulting runs and charges TLB walks, traffic, and access
//!   counters per run;
//! * the **reference walk**: the original per-page loop, retained for
//!   differential testing and debugging.
//!
//! The reference walk is forced either per-thread (tests, via
//! [`set_reference`]) or process-wide with `GH_ACCESS_REF=1` (debugging a
//! suspected fast-path divergence from the CLI). The thread-local flag —
//! not an env write — is what tests use, so parallel test threads cannot
//! race each other's setting.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    static FORCE_REF: Cell<bool> = const { Cell::new(false) };
}

fn env_ref() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var_os("GH_ACCESS_REF").is_some_and(|v| v != "0" && !v.is_empty())
    })
}

/// Forces (or releases) the per-line reference access path for the
/// current thread. Debug/testing only: both paths produce identical
/// reports, the reference walk is just line-granular and slow.
pub fn set_reference(on: bool) {
    FORCE_REF.with(|f| f.set(on));
}

/// Whether the per-line reference walk is in force for this thread.
pub fn reference_forced() -> bool {
    FORCE_REF.with(Cell::get) || env_ref()
}

/// RAII guard: forces the reference path for the current thread until
/// dropped. Keeps test code exception-safe around assertions.
#[derive(Debug)]
pub struct ReferenceGuard(());

impl ReferenceGuard {
    /// Forces the reference path until the guard drops.
    #[must_use = "the reference path is released when the guard drops"]
    pub fn new() -> Self {
        set_reference(true);
        ReferenceGuard(())
    }
}

impl Default for ReferenceGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ReferenceGuard {
    fn drop(&mut self) {
        set_reference(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_sets_and_restores() {
        assert!(!reference_forced());
        {
            let _g = ReferenceGuard::new();
            assert!(reference_forced());
        }
        assert!(!reference_forced());
    }
}
