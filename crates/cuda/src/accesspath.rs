//! Access-path selection: batched fast core vs. per-line reference walk.
//!
//! The kernel access path has two implementations that must produce
//! bitwise-identical RunReports:
//!
//! * the **batched core** (default): classifies whole `VpnRange`s into
//!   resident/faulting runs and charges TLB walks, traffic, and access
//!   counters per run;
//! * the **reference walk**: the original per-page loop, retained for
//!   differential testing and debugging.
//!
//! The selection is a per-session option —
//! [`RuntimeOptions::access_ref`](crate::RuntimeOptions::access_ref),
//! settable through
//! [`SessionOptions::access_ref`](crate::SessionOptions::access_ref) —
//! not ambient state. The pre-PR-9 `thread_local!` flag, the
//! `ReferenceGuard` RAII wrapper, and the `GH_ACCESS_REF` `OnceLock` env
//! latch are gone: reference and fast runs now coexist in one process
//! (the differential tests simply build two machines). `GH_ACCESS_REF=1`
//! is still honored as a CLI-boundary alias that seeds the session
//! option; library code never reads it.
