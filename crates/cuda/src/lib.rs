//! `gh-cuda` — the CUDA-runtime half of the Grace Hopper model.
//!
//! This crate stitches the hardware model (`gh-mem`) and the OS model
//! (`gh-os`) into a single [`Runtime`] that applications program against,
//! mirroring the CUDA APIs the paper's Table 1 catalogues:
//!
//! | real API                    | here                                   |
//! |-----------------------------|----------------------------------------|
//! | `malloc`                    | [`Runtime::malloc_system`]             |
//! | `cudaMallocManaged`         | [`Runtime::cuda_malloc_managed`]       |
//! | `cudaMalloc`                | [`Runtime::cuda_malloc`]               |
//! | `cudaMallocHost`            | [`Runtime::cuda_malloc_host`]          |
//! | `cudaMemcpy`                | [`Runtime::memcpy`]                    |
//! | `cudaMemPrefetchAsync`      | [`Runtime::prefetch`]                  |
//! | `cudaHostRegister`          | [`Runtime::cuda_host_register`]        |
//! | `cudaDeviceSynchronize`     | [`Runtime::device_synchronize`]        |
//! | kernel `<<<>>>` launch      | [`Runtime::launch`] → [`Kernel`]       |
//!
//! Two migration engines live here:
//!
//! * [`uvm`] — the CUDA managed-memory driver: GPU page-fault service,
//!   2 MiB-block on-demand migration, speculative sequential prefetching,
//!   LRU eviction under GPU memory pressure, and the remote-mapping
//!   fallback observed on Grace Hopper when eviction starts to thrash;
//! * the access-counter driver in [`kernel`] — the delayed,
//!   notification-based CPU→GPU migration for *system-allocated* memory
//!   (threshold 256, bounded notifications serviced per kernel).
//!
//! Every operation advances the virtual clock and feeds the memory
//! profiler, so `(time, RSS, GPU-used)` series come out of any run.
//!
//! ```
//! use gh_cuda::{Runtime, RuntimeOptions};
//! use gh_mem::params::CostParams;
//! use gh_units::Bytes;
//!
//! let mut rt = Runtime::new(CostParams::default(), RuntimeOptions::default());
//! let buf = rt.malloc_system(Bytes::new(1 << 20), "data"); // plain malloc
//! rt.cpu_write(&buf, 0, 1 << 20);              // CPU first touch
//! let mut k = rt.launch("sweep");
//! k.read(&buf, 0, 1 << 20);                    // GPU reads over NVLink-C2C
//! let report = k.finish();
//! assert_eq!(report.traffic.c2c_read, 1 << 20);
//! assert_eq!(report.traffic.gpu_faults, 0);    // coherent access, no faults
//! rt.free(buf);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod accesspath;
pub mod buffer;
pub mod kernel;
pub mod runtime;
pub mod session;
pub mod streams;
pub mod uvm;

pub use buffer::{BufKind, Buffer};
pub use kernel::{BufferTraffic, Kernel, KernelReport};
pub use runtime::{MemAdvise, Runtime, RuntimeOptions};
pub use session::{SessionCtx, SessionOptions};
pub use streams::{EventId, StreamId};
