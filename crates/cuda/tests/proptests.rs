//! Property tests for the runtime: accounting invariants must survive
//! arbitrary interleavings of allocation, host access, kernel access and
//! free across all allocator kinds.

use gh_cuda::{BufKind, Buffer, Runtime, RuntimeOptions};
use gh_mem::params::{CostParams, KIB, MIB};
use gh_mem::phys::Node;
use gh_units::Bytes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { kind: u8, kib: u64 },
    Free { idx: usize },
    CpuWrite { idx: usize, frac: u8 },
    GpuRead { idx: usize, frac: u8 },
    GpuWrite { idx: usize, frac: u8 },
    Prefetch { idx: usize, to_gpu: bool },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 4u64..2048).prop_map(|(kind, kib)| Op::Alloc { kind, kib }),
        (0usize..8).prop_map(|idx| Op::Free { idx }),
        (0usize..8, 1u8..=100).prop_map(|(idx, frac)| Op::CpuWrite { idx, frac }),
        (0usize..8, 1u8..=100).prop_map(|(idx, frac)| Op::GpuRead { idx, frac }),
        (0usize..8, 1u8..=100).prop_map(|(idx, frac)| Op::GpuWrite { idx, frac }),
        (0usize..8, prop::bool::ANY).prop_map(|(idx, to_gpu)| Op::Prefetch { idx, to_gpu }),
    ]
}

fn span(b: &Buffer, frac: u8) -> u64 {
    (b.len() * frac as u64 / 100).max(1).min(b.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence ending in freeing everything, both
    /// tiers return to their baselines and the clock is monotone.
    #[test]
    fn full_reclaim_under_arbitrary_workloads(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut rt = Runtime::new(CostParams::default(), RuntimeOptions::default());
        let baseline_gpu = rt.params().gpu_driver_baseline;
        let mut live: Vec<Buffer> = Vec::new();
        let mut last_t = 0;
        for op in ops {
            match op {
                Op::Alloc { kind, kib } => {
                    let bytes = kib * KIB;
                    let tag = "b";
                    let buf = match kind {
                        0 => Some(rt.malloc_system(Bytes::new(bytes), tag)),
                        1 => Some(rt.cuda_malloc_managed(Bytes::new(bytes), tag)),
                        2 => rt.cuda_malloc(Bytes::new(bytes), tag).ok(),
                        _ => Some(rt.cuda_malloc_host(Bytes::new(bytes), tag)),
                    };
                    if let Some(b) = buf {
                        live.push(b);
                    }
                }
                Op::Free { idx } => {
                    if !live.is_empty() {
                        let b = live.swap_remove(idx % live.len());
                        rt.free(b);
                    }
                }
                Op::CpuWrite { idx, frac } => {
                    if !live.is_empty() {
                        let b = live[idx % live.len()];
                        if b.kind != BufKind::Device {
                            rt.cpu_write(&b, 0, span(&b, frac));
                        }
                    }
                }
                Op::GpuRead { idx, frac } | Op::GpuWrite { idx, frac } => {
                    if !live.is_empty() {
                        let write = matches!(op, Op::GpuWrite { .. });
                        let b = live[idx % live.len()];
                        let mut k = rt.launch("k");
                        if write {
                            k.write(&b, 0, span(&b, frac));
                        } else {
                            k.read(&b, 0, span(&b, frac));
                        }
                        k.finish();
                    }
                }
                Op::Prefetch { idx, to_gpu } => {
                    if !live.is_empty() {
                        let b = live[idx % live.len()];
                        if b.kind == BufKind::Managed {
                            let node = if to_gpu { Node::Gpu } else { Node::Cpu };
                            rt.prefetch(&b, 0, b.len(), node);
                        }
                    }
                }
            }
            prop_assert!(rt.now() >= last_t, "clock must be monotone");
            last_t = rt.now();
            prop_assert!(rt.gpu_used() <= rt.params().gpu_mem_bytes);
        }
        for b in live.drain(..) {
            rt.free(b);
        }
        prop_assert_eq!(rt.gpu_used(), baseline_gpu, "GPU bytes leaked");
        prop_assert_eq!(rt.rss(), 0, "CPU pages leaked");
        prop_assert_eq!(rt.live_allocs(), 0);
    }

    /// Traffic conservation: for any dense kernel access, the bytes fed
    /// to the SMs (L1↔L2) equal local HBM traffic plus rounded-up remote
    /// C2C traffic — no bytes appear or vanish.
    #[test]
    fn kernel_traffic_is_conserved(cpu_kib in 0u64..512, gpu_first in prop::bool::ANY,
                                   read_kib in 1u64..512) {
        let mut rt = Runtime::new(
            CostParams::default(),
            RuntimeOptions { auto_migration: false, ..Default::default() },
        );
        let b = rt.malloc_system(Bytes::new(512 * KIB), "x");
        if cpu_kib > 0 {
            rt.cpu_write(&b, 0, cpu_kib * KIB);
        }
        if gpu_first {
            let mut k = rt.launch("init");
            k.write(&b, 0, b.len());
            k.finish();
        }
        let len = read_kib * KIB;
        let mut k = rt.launch("probe");
        k.read(&b, 0, len);
        let t = k.finish().traffic;
        prop_assert_eq!(t.l1l2, len, "SMs must receive exactly the bytes read");
        let line = rt.params().gpu_cacheline;
        // Remote traffic is line-rounded; local is exact.
        prop_assert!(t.hbm_read + t.c2c_read >= len);
        prop_assert!(t.hbm_read + t.c2c_read <= len + (len / KIB + 1) * line);
    }

    /// Managed residency: after a GPU read of the full buffer (no
    /// balloon), everything is GPU-resident and a second read is pure
    /// HBM traffic.
    #[test]
    fn managed_settles_on_gpu(kib in 64u64..4096) {
        let mut rt = Runtime::new(CostParams::default(), RuntimeOptions::default());
        let b = rt.cuda_malloc_managed(Bytes::new(kib * KIB), "m");
        rt.cpu_write(&b, 0, b.len());
        let mut k = rt.launch("first");
        k.read(&b, 0, b.len());
        k.finish();
        let mut k = rt.launch("second");
        k.read(&b, 0, b.len());
        let t = k.finish().traffic;
        prop_assert_eq!(t.c2c_read, 0);
        prop_assert_eq!(t.hbm_read, b.len());
        prop_assert_eq!(t.gpu_faults, 0);
        prop_assert_eq!(rt.rss(), 0);
    }

    /// Page-size invariance of results-affecting state: the same access
    /// pattern leaves the same logical residency split regardless of the
    /// page size (only costs differ).
    #[test]
    fn residency_split_is_page_size_independent(cpu_mib in 0u64..4, total_mib in 4u64..8) {
        let mut splits = Vec::new();
        for params in [CostParams::with_4k_pages(), CostParams::with_64k_pages()] {
            let mut rt = Runtime::new(params, RuntimeOptions {
                auto_migration: false, ..Default::default()
            });
            let b = rt.malloc_system(Bytes::new(total_mib * MIB), "x");
            if cpu_mib > 0 {
                rt.cpu_write(&b, 0, cpu_mib * MIB);
            }
            let mut k = rt.launch("rest");
            k.write(&b, cpu_mib * MIB, (total_mib - cpu_mib) * MIB);
            k.finish();
            splits.push((rt.rss(), rt.gpu_used() - rt.params().gpu_driver_baseline));
        }
        prop_assert_eq!(splits[0], splits[1]);
    }
}
