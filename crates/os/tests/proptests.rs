//! Property tests: OS allocation/fault/teardown invariants.

use gh_mem::params::{CostParams, KIB};
use gh_mem::phys::{Node, PhysMem};
use gh_os::{Os, OsConfig, VmaKind};
use gh_units::{Bytes, Pages, Vpn};
use proptest::prelude::*;

fn setup(page_4k: bool) -> (Os, PhysMem) {
    let params = if page_4k {
        CostParams::with_4k_pages()
    } else {
        CostParams::with_64k_pages()
    };
    let phys = PhysMem::new(
        Bytes::new(params.cpu_mem_bytes),
        Bytes::new(params.gpu_mem_bytes),
        Bytes::ZERO,
    );
    (Os::new(params, OsConfig::default()), phys)
}

proptest! {
    /// Allocated VMAs never overlap, regardless of request sizes.
    #[test]
    fn vmas_never_overlap(sizes in proptest::collection::vec(1u64..10_000_000, 1..20)) {
        let (mut os, _) = setup(true);
        let mut ranges = Vec::new();
        for (i, s) in sizes.iter().enumerate() {
            let (r, _) = os.mmap(*s, VmaKind::System, &format!("b{i}"));
            ranges.push(r);
        }
        for i in 0..ranges.len() {
            for j in i + 1..ranges.len() {
                prop_assert!(ranges[i].intersect(&ranges[j]).is_none(),
                    "VMA {i} and {j} overlap");
            }
        }
    }

    /// mmap → touch → munmap always returns physical memory to zero and
    /// leaves the page table empty.
    #[test]
    fn full_reclaim(size in 1u64..5_000_000, page_4k in prop::bool::ANY,
                    touch_fraction in 0.0f64..=1.0) {
        let (mut os, mut phys) = setup(page_4k);
        let (r, _) = os.mmap(size, VmaKind::System, "x");
        let touched = ((r.len as f64 * touch_fraction) as u64).min(r.len);
        if touched > 0 {
            os.touch_cpu_range(r.slice(0, touched), &mut phys);
        }
        os.munmap(r, &mut phys);
        prop_assert_eq!(phys.used(Node::Cpu), Bytes::ZERO);
        prop_assert_eq!(os.system_pt.populated_pages(), Pages::ZERO);
        prop_assert_eq!(os.rss(), 0);
    }

    /// RSS equals pages faulted on CPU × page size, and faulting is
    /// idempotent.
    #[test]
    fn rss_tracks_touched_pages(pages in 1u64..200, page_4k in prop::bool::ANY) {
        let (mut os, mut phys) = setup(page_4k);
        let page = os.params().system_page_size;
        let (r, _) = os.mmap(pages * page, VmaKind::System, "x");
        let (_, f1) = os.touch_cpu_range(r, &mut phys);
        prop_assert_eq!(f1, pages);
        prop_assert_eq!(os.rss(), pages * page);
        let (_, f2) = os.touch_cpu_range(r, &mut phys);
        prop_assert_eq!(f2, 0);
        prop_assert_eq!(os.rss(), pages * page);
    }

    /// Mixing CPU and GPU first touches: every page lands exactly once,
    /// split between nodes consistent with the touch origin.
    #[test]
    fn first_touch_split(pages in 2u64..100, gpu_first in 0u64..100) {
        let (mut os, mut phys) = setup(true);
        let page = os.params().system_page_size;
        let (r, _) = os.mmap(pages * page, VmaKind::System, "x");
        let vpns: Vec<Vpn> = os.system_pt.vpn_range(r.addr, r.len).into_iter().collect();
        let split = (gpu_first % pages) as usize;
        for &v in &vpns[..split] {
            let o = os.ats_fault(v, &mut phys);
            prop_assert_eq!(o.placed, Node::Gpu);
        }
        for &v in &vpns[split..] {
            let o = os.touch_cpu(v, &mut phys);
            prop_assert_eq!(o.placed, Node::Cpu);
        }
        prop_assert_eq!(os.system_pt.resident_pages(Node::Gpu), Pages::new(split as u64));
        prop_assert_eq!(os.system_pt.resident_pages(Node::Cpu), Pages::new(pages - split as u64));
        // Re-touching from the other side never moves pages.
        for &v in &vpns[..split] {
            let o = os.touch_cpu(v, &mut phys);
            prop_assert!(!o.faulted);
            prop_assert_eq!(o.placed, Node::Gpu);
        }
    }

    /// host_register then munmap reclaims everything; cost of register is
    /// below the equivalent fault-path cost for ≥1 page.
    #[test]
    fn host_register_invariants(kib in 4u64..4096) {
        let (mut os, mut phys) = setup(true);
        let (r, _) = os.mmap(kib * KIB, VmaKind::System, "x");
        let (cost_reg, created) = os.host_register(r, &mut phys);
        prop_assert_eq!(created, r.len / os.params().system_page_size);
        let (mut os2, mut phys2) = setup(true);
        let (r2, _) = os2.mmap(kib * KIB, VmaKind::System, "y");
        let (cost_fault, _) = os2.touch_cpu_range(r2, &mut phys2);
        prop_assert!(cost_reg <= cost_fault);
        os.munmap(r, &mut phys);
        prop_assert_eq!(phys.used(Node::Cpu), Bytes::ZERO);
    }
}
