//! NUMA placement policies.
//!
//! The GH200 exposes its two memories as NUMA nodes, so standard Linux
//! placement tooling applies: `numa_alloc_onnode`, `numactl --membind`,
//! `set_mempolicy`. The paper's Table 1 lists `numa_alloc_onnode()` as
//! one of the CPU-side allocation interfaces; the Grace tuning guide the
//! paper follows (its reference 21) discusses binding allocations to the GPU node so
//! CPU-side initialization lands directly in HBM — an alternative to
//! first-touch that this module makes expressible.

use gh_mem::clock::Ns;
use gh_mem::params::CostParams;
use gh_mem::phys::{Node, PhysMem};
use gh_units::{Bytes, Vpn};

use crate::os::Os;
use crate::vma::{VaRange, VmaKind};

/// Placement policy applied at first touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumaPolicy {
    /// First-touch: the faulting processor's node (Linux default).
    #[default]
    FirstTouch,
    /// Bind: always place on the given node; fail hard when full.
    Bind(Node),
    /// Preferred: place on the given node, fall back to the other.
    Preferred(Node),
    /// Interleave pages across both nodes round-robin.
    Interleave,
}

impl NumaPolicy {
    /// Picks the target node for `vpn` given the toucher's node.
    /// Returns `(primary, allow_fallback)`.
    pub fn place(&self, toucher: Node, vpn: Vpn) -> (Node, bool) {
        match self {
            NumaPolicy::FirstTouch => (toucher, true),
            NumaPolicy::Bind(n) => (*n, false),
            NumaPolicy::Preferred(n) => (*n, true),
            NumaPolicy::Interleave => {
                let n = if vpn.get().is_multiple_of(2) {
                    Node::Cpu
                } else {
                    Node::Gpu
                };
                (n, true)
            }
        }
    }
}

impl Os {
    /// `numa_alloc_onnode`: allocates a system VMA bound to `node` and
    /// pre-populates it there (the libnuma call touches eagerly).
    /// Returns the range and the total cost.
    pub fn numa_alloc_onnode(
        &mut self,
        bytes: Bytes,
        node: Node,
        tag: &str,
        phys: &mut PhysMem,
    ) -> (VaRange, Ns) {
        let (range, mut cost) =
            self.mmap_with_policy(bytes, VmaKind::System, NumaPolicy::Bind(node), tag);
        let page = self.system_pt.page();
        let mut pages = gh_units::Pages::ZERO;
        for vpn in self.system_pt.vpn_range(range.addr, range.len) {
            let frame = phys
                .alloc(node, page.bytes())
                .expect("numa_alloc_onnode: bound node exhausted"); // gh-audit: allow(no-unwrap-in-lib) -- bound-node exhaustion fails hard, matching libnuma
            self.system_pt.populate(vpn, node, frame);
            pages += gh_units::Pages::new(1);
        }
        let bw = match node {
            Node::Cpu => self.params().lpddr_bw,
            Node::Gpu => self.params().c2c_h2d_bw, // zero-fill crosses the link
        };
        cost = cost.saturating_add(
            pages
                .get()
                .saturating_mul(self.params().host_register_per_page)
                .saturating_add(CostParams::transfer_ns(pages * page, bw)),
        );
        (range, cost)
    }

    /// `mmap` with an explicit placement policy (`set_mempolicy` +
    /// `mmap`). Pages stay lazy; the policy applies at first touch.
    pub fn mmap_with_policy(
        &mut self,
        bytes: Bytes,
        kind: VmaKind,
        policy: NumaPolicy,
        tag: &str,
    ) -> (VaRange, Ns) {
        let (range, cost) = self.mmap(bytes.get(), kind, tag);
        self.set_policy(range, policy);
        (range, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsConfig;
    use gh_mem::params::MIB;

    fn setup() -> (Os, PhysMem) {
        let params = CostParams::default();
        let phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(params.gpu_mem_bytes),
            Bytes::ZERO,
        );
        (Os::new(params, OsConfig::default()), phys)
    }

    #[test]
    fn policy_place_semantics() {
        assert_eq!(
            NumaPolicy::FirstTouch.place(Node::Gpu, Vpn::new(0)),
            (Node::Gpu, true)
        );
        assert_eq!(
            NumaPolicy::Bind(Node::Cpu).place(Node::Gpu, Vpn::new(0)),
            (Node::Cpu, false)
        );
        assert_eq!(
            NumaPolicy::Preferred(Node::Gpu).place(Node::Cpu, Vpn::new(0)),
            (Node::Gpu, true)
        );
        assert_eq!(
            NumaPolicy::Interleave.place(Node::Cpu, Vpn::new(0)).0,
            Node::Cpu
        );
        assert_eq!(
            NumaPolicy::Interleave.place(Node::Cpu, Vpn::new(1)).0,
            Node::Gpu
        );
    }

    #[test]
    fn numa_alloc_onnode_populates_eagerly() {
        let (mut os, mut phys) = setup();
        let (r, cost) = os.numa_alloc_onnode(Bytes::new(2 * MIB), Node::Gpu, "g", &mut phys);
        assert!(cost > 0);
        assert_eq!(phys.used(Node::Gpu), Bytes::new(2 * MIB));
        let vpns = os.system_pt.vpn_range(r.addr, r.len);
        assert_eq!(
            os.system_pt.count_resident_in(vpns, Node::Gpu),
            gh_units::Pages::new(2 * MIB / os.params().system_page_size)
        );
        // RSS counts only CPU-resident pages.
        assert_eq!(os.rss(), 0);
    }

    #[test]
    fn bound_vma_places_cpu_touches_on_gpu() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap_with_policy(
            Bytes::new(MIB),
            VmaKind::System,
            NumaPolicy::Bind(Node::Gpu),
            "bound",
        );
        let vpn = os.system_pt.vpn(r.addr);
        let o = os.touch_cpu(vpn, &mut phys);
        assert_eq!(o.placed, Node::Gpu, "bind overrides first-touch");
    }

    #[test]
    fn interleave_alternates_nodes() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap_with_policy(
            Bytes::new(MIB),
            VmaKind::System,
            NumaPolicy::Interleave,
            "il",
        );
        let (_, faults) = os.touch_cpu_range(r, &mut phys);
        assert!(faults > 0);
        let vpns = os.system_pt.vpn_range(r.addr, r.len);
        let total = vpns.count();
        let on_cpu = os.system_pt.count_resident_in(vpns, Node::Cpu);
        assert!(
            on_cpu > gh_units::Pages::ZERO && on_cpu < total,
            "{on_cpu}/{total}"
        );
    }

    #[test]
    fn bound_vma_places_gpu_touches_on_cpu() {
        // The inverse binding: an ATS (GPU) first touch on a CPU-bound
        // VMA lands in LPDDR — what `numactl --membind=0` guarantees.
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap_with_policy(
            Bytes::new(MIB),
            VmaKind::System,
            NumaPolicy::Bind(Node::Cpu),
            "bound_cpu",
        );
        let vpn = os.system_pt.vpn(r.addr);
        let o = os.ats_fault(vpn, &mut phys);
        assert_eq!(o.placed, Node::Cpu);
        assert_eq!(phys.used(Node::Gpu), Bytes::ZERO);
    }

    #[test]
    fn preferred_falls_back_when_full() {
        let params = CostParams::default();
        let mut phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(64 * 1024),
            Bytes::ZERO,
        );
        let mut os = Os::new(params, OsConfig::default());
        let (r, _) = os.mmap_with_policy(
            Bytes::new(2 * MIB),
            VmaKind::System,
            NumaPolicy::Preferred(Node::Gpu),
            "pref",
        );
        os.touch_cpu_range(r, &mut phys);
        let vpns = os.system_pt.vpn_range(r.addr, r.len);
        assert_eq!(
            os.system_pt.count_resident_in(vpns, Node::Gpu),
            gh_units::Pages::new(1)
        );
        assert!(os.system_pt.count_resident_in(vpns, Node::Cpu) > gh_units::Pages::ZERO);
    }
}
