//! Virtual memory areas.

/// How a VMA's pages are managed — the three allocation categories of the
/// paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// System-allocated memory (`malloc`): system page table only, pages on
    /// either node, first-touch placement, eligible for access-counter
    /// migration.
    System,
    /// CUDA managed memory (`cudaMallocManaged`): system page table while
    /// CPU-resident, GPU-exclusive page table while GPU-resident,
    /// on-demand migration.
    Managed,
    /// Pinned CPU memory (`cudaMallocHost` / registered): CPU-resident,
    /// never migrates.
    Pinned,
    /// GPU-only (`cudaMalloc`): GPU page table, GPU-resident, explicit
    /// copies only.
    DeviceOnly,
}

/// A contiguous virtual address range `[addr, addr + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaRange {
    /// Start virtual address (bytes).
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

impl VaRange {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.addr + self.len
    }

    /// Whether `a` falls inside the range.
    pub fn contains(&self, a: u64) -> bool {
        a >= self.addr && a < self.end()
    }

    /// The sub-range starting `offset` bytes in, `len` bytes long.
    /// Panics if it does not fit.
    pub fn slice(&self, offset: u64, len: u64) -> VaRange {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {}) outside VMA of {} bytes",
            offset + len,
            self.len
        );
        VaRange {
            addr: self.addr + offset,
            len,
        }
    }

    /// Intersection with another range, if non-empty.
    pub fn intersect(&self, other: &VaRange) -> Option<VaRange> {
        let lo = self.addr.max(other.addr);
        let hi = self.end().min(other.end());
        (lo < hi).then(|| VaRange {
            addr: lo,
            len: hi - lo,
        })
    }
}

/// A virtual memory area: a live allocation.
#[derive(Debug, Clone)]
pub struct Vma {
    /// The address range.
    pub range: VaRange,
    /// Management policy.
    pub kind: VmaKind,
    /// NUMA placement policy applied at first touch.
    pub policy: crate::numa::NumaPolicy,
    /// Human-readable tag for profiler output (e.g. buffer name).
    pub tag: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = VaRange { addr: 100, len: 50 };
        assert_eq!(r.end(), 150);
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(!r.contains(99));
    }

    #[test]
    fn slice_within_bounds() {
        let r = VaRange {
            addr: 1000,
            len: 100,
        };
        let s = r.slice(10, 20);
        assert_eq!(s.addr, 1010);
        assert_eq!(s.len, 20);
    }

    #[test]
    #[should_panic(expected = "outside VMA")]
    fn slice_out_of_bounds_panics() {
        VaRange { addr: 0, len: 10 }.slice(5, 6);
    }

    #[test]
    fn intersect_overlapping() {
        let a = VaRange { addr: 0, len: 100 };
        let b = VaRange { addr: 50, len: 100 };
        assert_eq!(a.intersect(&b), Some(VaRange { addr: 50, len: 50 }));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = VaRange { addr: 0, len: 10 };
        let b = VaRange { addr: 10, len: 10 };
        assert_eq!(a.intersect(&b), None);
    }
}
