//! `gh-os` — the operating-system half of the Grace Hopper memory model.
//!
//! Models what RHEL does on the real machine (paper §2.2):
//!
//! * `malloc` of a large region creates a **VMA** and page-table entries
//!   are *not* populated — physical memory is assigned lazily;
//! * the **first touch** of a page raises a minor fault; the OS picks a
//!   frame on the faulting processor's NUMA node (first-touch policy),
//!   installs the PTE in the *system-wide page table* and replays the
//!   access;
//! * GPU first touches arrive as **SMMU/ATS faults** over NVLink-C2C and
//!   are serviced *by the CPU*, which is the §5.1.2 bottleneck: GPU-side
//!   initialization of system-allocated memory is much slower than
//!   CPU-side initialization;
//! * `free` tears PTEs down one page at a time, which is why dealloc time
//!   scales with page count (Fig 6: 64 KiB pages ≈ 16× cheaper);
//! * `cudaHostRegister`-style pre-population installs PTEs in bulk,
//!   skipping the fault path (§5.1.2 optimization).
//!
//! The OS owns the virtual address space and the system page table; the
//! CUDA runtime model (`gh-cuda`) owns the GPU-exclusive page table and
//! calls into this crate for anything involving system pages.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod numa;
pub mod os;
pub mod vma;

pub use numa::NumaPolicy;
pub use os::{FaultOutcome, Os, OsConfig, SmapsEntry};
pub use vma::{VaRange, Vma, VmaKind};
