//! The OS memory-management model: address space, lazy population,
//! first-touch fault service, teardown.

use gh_mem::clock::Ns;
use gh_mem::pagetable::PageTable;
use gh_mem::params::{CostParams, MIB};
use gh_mem::phys::{Node, PhysMem};
use gh_units::{widen, Bytes, Vpn};

use crate::vma::{VaRange, Vma, VmaKind};
use std::collections::BTreeMap;

/// OS-level switches from the paper's §3 testbed configuration.
#[derive(Debug, Clone, Default)]
pub struct OsConfig {
    /// Automatic NUMA balancing. The paper *disables* it because AutoNUMA
    /// hint faults hurt GPU-heavy applications; when enabled here, every
    /// fault pays an extra bookkeeping cost and periodic hint-fault sweeps
    /// are charged by the runtime layer.
    pub autonuma: bool,
    /// `init_on_alloc` (zero pages at allocation instead of at fault).
    /// Off in the paper's testbed; when on, `mmap` pays the zero-fill for
    /// the whole region up front.
    pub init_on_alloc: bool,
}

/// Result of a fault-path invocation.
#[derive(Debug, Clone, Copy)]
pub struct FaultOutcome {
    /// Virtual time consumed.
    pub cost: Ns,
    /// Node the page ended up on (or already was on).
    pub placed: Node,
    /// Whether a fault was actually serviced (false = page was already
    /// populated and the access proceeded directly).
    pub faulted: bool,
}

/// The operating system: virtual address space + system-wide page table.
#[derive(Debug)]
pub struct Os {
    params: CostParams,
    config: OsConfig,
    /// The integrated system-wide page table (CPU-resident, SMMU-walked).
    pub system_pt: PageTable,
    vmas: BTreeMap<u64, Vma>,
    va_cursor: u64,
    cpu_faults: u64,
    ats_faults: u64,
    bus: gh_trace::Bus,
    perf: gh_perf::Perf,
}

impl Os {
    /// Boots the OS with the given cost model and configuration.
    /// Observability is off until [`Os::with_obs`] injects the session's
    /// handles.
    pub fn new(params: CostParams, config: OsConfig) -> Self {
        params.validate().expect("invalid cost parameters"); // gh-audit: allow(no-unwrap-in-lib) -- boot-time config validation; fail fast before any state exists
        let page = params.system_page_size;
        Self {
            params,
            config,
            system_pt: PageTable::new(page),
            vmas: BTreeMap::new(),
            va_cursor: 2 * MIB, // keep null page unmapped; 2 MiB alignment
            cpu_faults: 0,
            ats_faults: 0,
            bus: gh_trace::Bus::off(),
            perf: gh_perf::Perf::off(),
        }
    }

    /// Attaches the owning session's observability handles. Recording is
    /// report-only: fault costs and placements are bit-identical either
    /// way.
    pub fn with_obs(mut self, bus: gh_trace::Bus, perf: gh_perf::Perf) -> Self {
        self.bus = bus;
        self.perf = perf;
        self
    }

    /// The cost model in force.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// OS configuration in force.
    pub fn config(&self) -> &OsConfig {
        &self.config
    }

    /// Count of CPU-originated minor faults serviced.
    pub fn cpu_faults(&self) -> u64 {
        self.cpu_faults
    }

    /// Count of GPU-originated (SMMU/ATS) faults serviced.
    pub fn ats_faults(&self) -> u64 {
        self.ats_faults
    }

    /// Creates a VMA of `len` bytes (rounded up to the page size) and
    /// returns it with the creation cost. No physical memory is assigned
    /// (unless `init_on_alloc` is set, which charges — but still lazily
    /// places — the zero-fill).
    pub fn mmap(&mut self, len: u64, kind: VmaKind, tag: &str) -> (VaRange, Ns) {
        assert!(len > 0, "zero-length mmap");
        let page = self.params.system_page_size;
        let aligned_len = len.div_ceil(page) * page;
        // 2 MiB-align every VMA so access-counter regions and GPU pages
        // never straddle two allocations.
        let addr = self.va_cursor;
        self.va_cursor += aligned_len.div_ceil(2 * MIB) * (2 * MIB);
        let range = VaRange {
            addr,
            len: aligned_len,
        };
        self.vmas.insert(
            addr,
            Vma {
                range,
                kind,
                policy: crate::numa::NumaPolicy::FirstTouch,
                tag: tag.to_string(),
            },
        );
        let mut cost = self.params.vma_create;
        if self.config.init_on_alloc {
            cost = cost.saturating_add(CostParams::transfer_ns(
                Bytes::new(aligned_len),
                self.params.lpddr_bw,
            ));
        }
        if self.bus.is_on() {
            self.bus.emit(gh_trace::Event::VmaCreate {
                va: addr,
                bytes: aligned_len,
            });
            self.bus.count("os.vma_created", 1);
        }
        (range, cost)
    }

    /// Sets the NUMA placement policy of the VMA at `range.addr`.
    pub fn set_policy(&mut self, range: VaRange, policy: crate::numa::NumaPolicy) {
        let vma = self
            .vmas
            .get_mut(&range.addr)
            .unwrap_or_else(|| panic!("set_policy on unknown VMA at {:#x}", range.addr)); // gh-audit: allow(no-unwrap-in-lib) -- an unknown VMA is a caller bug
        vma.policy = policy;
    }

    /// Looks up the VMA containing `addr`.
    pub fn vma_at(&self, addr: u64) -> Option<&Vma> {
        self.vmas
            .range(..=addr)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(addr))
    }

    /// Iterates over all live VMAs.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Destroys a VMA: unmaps every populated system page (releasing its
    /// frame) and removes the area. Returns the teardown cost, which is
    /// dominated by per-PTE work — the Fig 6 effect.
    ///
    /// Pages this VMA may hold in the *GPU-exclusive* table must be torn
    /// down by the CUDA layer before calling this.
    pub fn munmap(&mut self, range: VaRange, phys: &mut PhysMem) -> Ns {
        let vma = self
            .vmas
            .remove(&range.addr)
            .unwrap_or_else(|| panic!("munmap of unknown VMA at {:#x}", range.addr)); // gh-audit: allow(no-unwrap-in-lib) -- an unknown VMA is a caller bug
        assert_eq!(vma.range.len, range.len, "partial munmap not modelled");
        let page = Bytes::new(self.params.system_page_size);
        let vpns = self.system_pt.vpn_range(range.addr, range.len);
        let removed = self.system_pt.unmap_range(vpns);
        for (_, pte) in &removed {
            phys.release(pte.node, page);
        }
        if self.bus.is_on() {
            self.bus.emit(gh_trace::Event::VmaDestroy {
                ptes: widen(removed.len()),
            });
            self.bus.count("os.vma_destroyed", 1);
            self.bus.count("os.pte_teardowns", widen(removed.len()));
        }
        self.params.vma_create / 2 + widen(removed.len()) * self.params.pte_teardown
    }

    /// Picks the frame node for a first touch honoring the VMA's NUMA
    /// policy. Panics if a `Bind` target (or both tiers) is exhausted.
    fn place_first_touch(&mut self, vpn: Vpn, toucher: Node, phys: &mut PhysMem) -> (Node, u64) {
        let page = self.params.system_page_size;
        let policy = self
            .vma_at(vpn.get() * page)
            .map(|v| v.policy)
            .unwrap_or_default();
        let (primary, fallback) = policy.place(toucher, vpn);
        match phys.alloc(primary, Bytes::new(page)) {
            Ok(f) => (primary, f),
            Err(e) if !fallback => panic!("NUMA-bound allocation failed: {e}"), // gh-audit: allow(no-unwrap-in-lib) -- Bind policy is documented to fail hard when the node is full
            Err(_) => {
                let other = primary.peer();
                let f = phys
                    .alloc(other, Bytes::new(page))
                    .expect("both memory tiers exhausted"); // gh-audit: allow(no-unwrap-in-lib) -- both tiers exhausted means the experiment exceeds machine memory
                (other, f)
            }
        }
    }

    /// CPU touches one system page (read or write). If unpopulated, a
    /// minor fault places it per the VMA's policy (first-touch default:
    /// the CPU node) and zero-fills.
    pub fn touch_cpu(&mut self, vpn: Vpn, phys: &mut PhysMem) -> FaultOutcome {
        if let Some(pte) = self.system_pt.translate(vpn) {
            return FaultOutcome {
                cost: 0,
                placed: pte.node,
                faulted: false,
            };
        }
        let page = self.params.system_page_size;
        let (node, frame) = self.place_first_touch(vpn, Node::Cpu, phys);
        self.system_pt.populate(vpn, node, frame);
        self.cpu_faults = self.cpu_faults.saturating_add(1);
        self.perf.count(gh_perf::Ctr::Faults, 1);
        let zero_bw = match node {
            Node::Cpu => self.params.lpddr_bw,
            Node::Gpu => self.params.c2c_h2d_bw,
        };
        let mut cost =
            self.params.cpu_fault_fixed + CostParams::transfer_ns(Bytes::new(page), zero_bw);
        if self.config.autonuma {
            cost = cost.saturating_add(cost / 4); // NUMA-hinting bookkeeping overhead
        }
        if self.bus.is_on() {
            self.bus.emit(gh_trace::Event::PageFault {
                kind: gh_trace::FaultKind::Cpu,
                va: vpn.get() * page,
                cost,
            });
            self.bus.count("os.cpu_faults", 1);
            self.bus.observe("fault.cost_ns", cost);
        }
        FaultOutcome {
            cost,
            placed: node,
            faulted: true,
        }
    }

    /// Bulk CPU first-touch over a byte range: returns total cost and the
    /// number of pages actually faulted.
    pub fn touch_cpu_range(&mut self, range: VaRange, phys: &mut PhysMem) -> (Ns, u64) {
        let mut cost: Ns = 0;
        let mut faults: u64 = 0;
        for vpn in self.system_pt.vpn_range(range.addr, range.len) {
            let o = self.touch_cpu(vpn, phys);
            cost = cost.saturating_add(o.cost);
            if o.faulted {
                faults = faults.saturating_add(1);
            }
        }
        (cost, faults)
    }

    /// Services a GPU-originated first-touch fault on a system page: the
    /// SMMU found no valid PTE, raised a fault, and the OS services it *on
    /// the CPU*. First-touch policy places the page on the GPU node (the
    /// toucher); if HBM is full the page falls back to the CPU node.
    ///
    /// This path is intentionally expensive (`ats_fault_fixed`, serialized
    /// on the CPU): it is the §5.1.2 GPU-side-initialization bottleneck.
    pub fn ats_fault(&mut self, vpn: Vpn, phys: &mut PhysMem) -> FaultOutcome {
        if let Some(pte) = self.system_pt.translate(vpn) {
            return FaultOutcome {
                cost: 0,
                placed: pte.node,
                faulted: false,
            };
        }
        let page = self.params.system_page_size;
        let (node, frame) = self.place_first_touch(vpn, Node::Gpu, phys);
        self.system_pt.populate(vpn, node, frame);
        self.ats_faults = self.ats_faults.saturating_add(1);
        self.perf.count(gh_perf::Ctr::Faults, 1);
        let mut cost = self.params.ats_fault_fixed
            + gh_units::ns_from_f64(page as f64 * self.params.ats_fault_per_byte);
        if self.config.autonuma {
            cost = cost.saturating_add(cost / 4);
        }
        if self.bus.is_on() {
            self.bus.emit(gh_trace::Event::PageFault {
                kind: gh_trace::FaultKind::Ats,
                va: vpn.get() * page,
                cost,
            });
            self.bus.count("os.ats_faults", 1);
            self.bus.observe("fault.cost_ns", cost);
        }
        FaultOutcome {
            cost,
            placed: node,
            faulted: true,
        }
    }

    /// Pre-populates every page of `range` on the CPU node in bulk
    /// (`cudaHostRegister` / artificial pre-init loop, §5.1.2). Much
    /// cheaper per page than the fault path. Returns (cost, pages created).
    pub fn host_register(&mut self, range: VaRange, phys: &mut PhysMem) -> (Ns, u64) {
        let page = self.params.system_page_size;
        let mut created: u64 = 0;
        for vpn in self.system_pt.vpn_range(range.addr, range.len) {
            if !self.system_pt.is_populated(vpn) {
                let frame = phys
                    .alloc(Node::Cpu, Bytes::new(page))
                    .expect("CPU physical memory exhausted"); // gh-audit: allow(no-unwrap-in-lib) -- mlock past CPU capacity is an experiment-config error
                self.system_pt.populate(vpn, Node::Cpu, frame);
                created = created.saturating_add(1);
            }
        }
        let cost = created * self.params.host_register_per_page
            + CostParams::transfer_ns(Bytes::new(created * page), self.params.lpddr_bw);
        if self.bus.is_on() && created > 0 {
            self.bus.emit(gh_trace::Event::Pin {
                va: range.addr,
                bytes: created * page,
            });
            self.bus.count("os.pages_pinned", created);
        }
        (cost, created)
    }

    /// Process RSS as the paper's profiler reports it: bytes of system
    /// pages resident in **CPU** physical memory.
    pub fn rss(&self) -> u64 {
        self.system_pt.resident_bytes(Node::Cpu).get()
    }

    /// `/proc/<pid>/smaps`-style per-VMA residency breakdown: for every
    /// live VMA, `(tag, kind, vma bytes, CPU-resident bytes, GPU-resident
    /// bytes)`. The paper's profiler reads `smaps_rollup`; this is the
    /// un-rolled view for diagnosis.
    pub fn smaps(&self) -> Vec<SmapsEntry> {
        let page = self.system_pt.page();
        self.vmas
            .values()
            .map(|v| {
                let vpns = self.system_pt.vpn_range(v.range.addr, v.range.len);
                let cpu = (self.system_pt.count_resident_in(vpns, Node::Cpu) * page).get();
                let gpu = (self.system_pt.count_resident_in(vpns, Node::Gpu) * page).get();
                SmapsEntry {
                    tag: v.tag.clone(),
                    kind: v.kind,
                    size: v.range.len,
                    resident_cpu: cpu,
                    resident_gpu: gpu,
                }
            })
            .collect()
    }
}

/// One row of [`Os::smaps`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmapsEntry {
    /// Buffer tag supplied at allocation.
    pub tag: String,
    /// VMA kind.
    pub kind: VmaKind,
    /// Virtual size in bytes.
    pub size: u64,
    /// Bytes resident in CPU (LPDDR) memory.
    pub resident_cpu: u64,
    /// Bytes resident in GPU (HBM) memory.
    pub resident_gpu: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::params::KIB;
    use gh_units::Pages;

    fn setup() -> (Os, PhysMem) {
        let params = CostParams::with_4k_pages();
        let phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(params.gpu_mem_bytes),
            Bytes::ZERO,
        );
        (Os::new(params, OsConfig::default()), phys)
    }

    #[test]
    fn mmap_creates_lazy_vma() {
        let (mut os, _) = setup();
        let (r, cost) = os.mmap(10 * KIB, VmaKind::System, "buf");
        assert_eq!(r.len, 12 * KIB, "rounded to page multiple");
        assert!(cost > 0);
        assert_eq!(
            os.system_pt.populated_pages(),
            Pages::ZERO,
            "no eager population"
        );
        assert_eq!(os.rss(), 0);
    }

    #[test]
    fn vma_lookup_by_address() {
        let (mut os, _) = setup();
        let (a, _) = os.mmap(4 * KIB, VmaKind::System, "a");
        let (b, _) = os.mmap(4 * KIB, VmaKind::Managed, "b");
        assert_eq!(os.vma_at(a.addr).unwrap().tag, "a");
        assert_eq!(os.vma_at(b.addr).unwrap().kind, VmaKind::Managed);
        assert!(os.vma_at(b.end() + 4 * MIB).is_none());
    }

    #[test]
    fn vmas_are_2mib_aligned() {
        let (mut os, _) = setup();
        let (a, _) = os.mmap(1, VmaKind::System, "a");
        let (b, _) = os.mmap(1, VmaKind::System, "b");
        assert_eq!(a.addr % (2 * MIB), 0);
        assert_eq!(b.addr % (2 * MIB), 0);
        assert!(b.addr >= a.addr + 2 * MIB);
    }

    #[test]
    fn cpu_first_touch_faults_once() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(4 * KIB, VmaKind::System, "x");
        let vpn = os.system_pt.vpn(r.addr);
        let o1 = os.touch_cpu(vpn, &mut phys);
        assert!(o1.faulted);
        assert_eq!(o1.placed, Node::Cpu);
        assert!(o1.cost > 0);
        let o2 = os.touch_cpu(vpn, &mut phys);
        assert!(!o2.faulted);
        assert_eq!(o2.cost, 0);
        assert_eq!(os.cpu_faults(), 1);
        assert_eq!(os.rss(), 4 * KIB);
    }

    #[test]
    fn touch_range_counts_pages() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(40 * KIB, VmaKind::System, "x");
        let (cost, faults) = os.touch_cpu_range(r, &mut phys);
        assert_eq!(faults, 10);
        assert!(cost >= 10 * os.params().cpu_fault_fixed);
        // Second touch is free.
        let (cost2, faults2) = os.touch_cpu_range(r, &mut phys);
        assert_eq!((cost2, faults2), (0, 0));
    }

    #[test]
    fn ats_fault_places_on_gpu_first() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(4 * KIB, VmaKind::System, "x");
        let vpn = os.system_pt.vpn(r.addr);
        let o = os.ats_fault(vpn, &mut phys);
        assert!(o.faulted);
        assert_eq!(o.placed, Node::Gpu);
        assert_eq!(os.ats_faults(), 1);
        assert_eq!(os.rss(), 0, "GPU-resident pages are not CPU RSS");
        assert_eq!(phys.used(Node::Gpu), Bytes::new(4 * KIB));
    }

    #[test]
    fn ats_fault_falls_back_to_cpu_when_gpu_full() {
        let params = CostParams::with_4k_pages();
        let mut phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(8 * KIB),
            Bytes::ZERO,
        );
        let mut os = Os::new(params, OsConfig::default());
        let (r, _) = os.mmap(16 * KIB, VmaKind::System, "x");
        let vpns: Vec<Vpn> = os.system_pt.vpn_range(r.addr, r.len).into_iter().collect();
        assert_eq!(os.ats_fault(vpns[0], &mut phys).placed, Node::Gpu);
        assert_eq!(os.ats_fault(vpns[1], &mut phys).placed, Node::Gpu);
        assert_eq!(os.ats_fault(vpns[2], &mut phys).placed, Node::Cpu);
    }

    #[test]
    fn ats_fault_costs_more_than_cpu_fault() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(8 * KIB, VmaKind::System, "x");
        let v0 = os.system_pt.vpn(r.addr);
        let cpu = os.touch_cpu(v0, &mut phys);
        let gpu = os.ats_fault(v0.offset(1), &mut phys);
        assert!(
            gpu.cost > 2 * cpu.cost,
            "ATS fault ({}) must dwarf CPU fault ({})",
            gpu.cost,
            cpu.cost
        );
    }

    #[test]
    fn munmap_releases_frames_and_scales_with_pages() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(400 * KIB, VmaKind::System, "x");
        os.touch_cpu_range(r, &mut phys);
        assert_eq!(phys.used(Node::Cpu), Bytes::new(400 * KIB));
        let cost_full = os.munmap(r, &mut phys);
        assert_eq!(phys.used(Node::Cpu), Bytes::ZERO);
        assert_eq!(os.system_pt.populated_pages(), Pages::ZERO);

        // An untouched VMA tears down almost for free.
        let (r2, _) = os.mmap(400 * KIB, VmaKind::System, "y");
        let cost_empty = os.munmap(r2, &mut phys);
        assert!(cost_full > cost_empty * 10);
    }

    #[test]
    fn dealloc_cost_64k_vs_4k_ratio_matches_fig6() {
        // Same byte size, two page sizes: the teardown ratio must be ~16×.
        let sz = 16 * MIB;
        let mut cost = [0u64; 2];
        for (i, params) in [CostParams::with_4k_pages(), CostParams::with_64k_pages()]
            .into_iter()
            .enumerate()
        {
            let mut phys = PhysMem::new(
                Bytes::new(params.cpu_mem_bytes),
                Bytes::new(params.gpu_mem_bytes),
                Bytes::ZERO,
            );
            let mut os = Os::new(params, OsConfig::default());
            let (r, _) = os.mmap(sz, VmaKind::System, "x");
            os.touch_cpu_range(r, &mut phys);
            cost[i] = os.munmap(r, &mut phys);
        }
        let ratio = cost[0] as f64 / cost[1] as f64;
        assert!(
            (10.0..=20.0).contains(&ratio),
            "4K/64K dealloc ratio {ratio} outside Fig 6 band"
        );
    }

    #[test]
    fn host_register_prepopulates_cheaper_than_faults() {
        let (mut os, mut phys) = setup();
        let (r, _) = os.mmap(4 * MIB, VmaKind::System, "x");
        let (reg_cost, created) = os.host_register(r, &mut phys);
        assert_eq!(created, 1024);
        assert_eq!(os.rss(), 4 * MIB);
        // Against a fresh OS, the fault path must be slower.
        let (mut os2, mut phys2) = setup();
        let (r2, _) = os2.mmap(4 * MIB, VmaKind::System, "y");
        let (fault_cost, _) = os2.touch_cpu_range(r2, &mut phys2);
        assert!(fault_cost > reg_cost);
        // Registering twice creates nothing new.
        let (_, created2) = os.host_register(r, &mut phys);
        assert_eq!(created2, 0);
    }

    #[test]
    fn autonuma_adds_overhead() {
        let params = CostParams::with_4k_pages();
        let mut phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(params.gpu_mem_bytes),
            Bytes::ZERO,
        );
        let mut os_off = Os::new(params.clone(), OsConfig::default());
        let mut os_on = Os::new(
            params,
            OsConfig {
                autonuma: true,
                ..Default::default()
            },
        );
        let (r1, _) = os_off.mmap(4 * KIB, VmaKind::System, "x");
        let (r2, _) = os_on.mmap(4 * KIB, VmaKind::System, "x");
        let c_off = os_off
            .touch_cpu(os_off.system_pt.vpn(r1.addr), &mut phys)
            .cost;
        let c_on = os_on
            .touch_cpu(os_on.system_pt.vpn(r2.addr), &mut phys)
            .cost;
        assert!(c_on > c_off);
    }

    #[test]
    fn init_on_alloc_charges_mmap() {
        let params = CostParams::with_4k_pages();
        let mut os_off = Os::new(params.clone(), OsConfig::default());
        let mut os_on = Os::new(
            params,
            OsConfig {
                init_on_alloc: true,
                ..Default::default()
            },
        );
        let (_, c_off) = os_off.mmap(64 * MIB, VmaKind::System, "x");
        let (_, c_on) = os_on.mmap(64 * MIB, VmaKind::System, "x");
        assert!(c_on > c_off * 10);
    }

    #[test]
    #[should_panic(expected = "unknown VMA")]
    fn munmap_unknown_panics() {
        let (mut os, mut phys) = setup();
        os.munmap(
            VaRange {
                addr: 0x999,
                len: 4 * KIB,
            },
            &mut phys,
        );
    }
}

#[cfg(test)]
mod smaps_tests {
    use super::*;
    use crate::vma::VmaKind;
    use gh_mem::params::MIB;

    #[test]
    fn smaps_reports_split_residency() {
        let params = CostParams::default();
        let mut phys = PhysMem::new(
            Bytes::new(params.cpu_mem_bytes),
            Bytes::new(params.gpu_mem_bytes),
            Bytes::ZERO,
        );
        let mut os = Os::new(params, OsConfig::default());
        let (r, _) = os.mmap(4 * MIB, VmaKind::System, "buf");
        // Touch half from CPU, a quarter from GPU.
        os.touch_cpu_range(r.slice(0, 2 * MIB), &mut phys);
        for vpn in os.system_pt.vpn_range(r.addr + 2 * MIB, MIB) {
            os.ats_fault(vpn, &mut phys);
        }
        let maps = os.smaps();
        assert_eq!(maps.len(), 1);
        let e = &maps[0];
        assert_eq!(e.tag, "buf");
        assert_eq!(e.size, 4 * MIB);
        assert_eq!(e.resident_cpu, 2 * MIB);
        assert_eq!(e.resident_gpu, MIB);
    }

    #[test]
    fn smaps_empty_for_untouched_vma() {
        let params = CostParams::default();
        let mut os = Os::new(params, OsConfig::default());
        os.mmap(MIB, VmaKind::Managed, "lazy");
        let maps = os.smaps();
        assert_eq!(maps[0].resident_cpu + maps[0].resident_gpu, 0);
        assert_eq!(maps[0].kind, VmaKind::Managed);
    }
}
