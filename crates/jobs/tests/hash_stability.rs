//! Hash-stability contract for [`JobSpec`]: the canonical key string and
//! its FNV-1a hash are cache identity across processes and platforms, so
//! both are pinned here. If one of these assertions fails, the change is
//! a cache-format break — every memoized report silently misses — and
//! must be deliberate, with the goldens updated in the same commit.

use gh_apps::{AppId, MemMode};
use gh_cuda::SessionOptions;
use gh_jobs::{fnv1a64, JobSpec};
use proptest::prelude::*;

/// A spec per key-relevant field departure from the defaults, plus the
/// all-defaults spec itself.
fn spec_matrix() -> Vec<JobSpec> {
    let mut m = Vec::new();
    m.push(JobSpec::new(AppId::Needle, "gh200", MemMode::Explicit));
    let mut s = JobSpec::new(AppId::Bfs, "gh200", MemMode::System);
    s.small = true;
    m.push(s);
    let mut s = JobSpec::new(AppId::Hotspot, "mi300a", MemMode::Managed);
    s.page_size = Some(65536);
    m.push(s);
    let mut s = JobSpec::new(AppId::Srad, "gh200", MemMode::System);
    s.session.trace = true;
    s.session.trace_capacity = Some(4096);
    m.push(s);
    let mut s = JobSpec::new(AppId::Pathfinder, "gh200", MemMode::Explicit);
    s.session.perf = true;
    s.session.sanitize = Some(false);
    m.push(s);
    let mut s = JobSpec::new(AppId::Needle, "gh200", MemMode::System);
    s.session.sanitize = Some(true);
    s.session.access_ref = true;
    m.push(s);
    m
}

/// Golden `(canonical_key, stable_hash)` pairs for [`spec_matrix`].
const GOLDEN: [(&str, u64); 6] = [
    (
        "app=needle;platform=gh200;mode=explicit;page=default;small=0;trace=0;cap=default;perf=0;sanitize=default;ref=0",
        0x0d3d_5c86_fb42_3ae8,
    ),
    (
        "app=bfs;platform=gh200;mode=system;page=default;small=1;trace=0;cap=default;perf=0;sanitize=default;ref=0",
        0x6ec7_ea69_8315_44e0,
    ),
    (
        "app=hotspot;platform=mi300a;mode=managed;page=65536;small=0;trace=0;cap=default;perf=0;sanitize=default;ref=0",
        0x83cd_8637_51bb_d6b8,
    ),
    (
        "app=srad;platform=gh200;mode=system;page=default;small=0;trace=1;cap=4096;perf=0;sanitize=default;ref=0",
        0x806f_10c1_2377_9ad5,
    ),
    (
        "app=pathfinder;platform=gh200;mode=explicit;page=default;small=0;trace=0;cap=default;perf=1;sanitize=0;ref=0",
        0x543b_ebf9_dcf4_63b0,
    ),
    (
        "app=needle;platform=gh200;mode=system;page=default;small=0;trace=0;cap=default;perf=0;sanitize=1;ref=1",
        0x1eae_1dc4_9d1f_9d52,
    ),
];

#[test]
fn canonical_keys_and_hashes_match_goldens() {
    let specs = spec_matrix();
    assert_eq!(specs.len(), GOLDEN.len());
    for (spec, (key, hash)) in specs.iter().zip(GOLDEN) {
        assert_eq!(spec.canonical_key(), key);
        assert_eq!(spec.stable_hash(), hash, "for key {key}");
    }
}

#[test]
fn stable_hash_is_fnv1a_of_the_key() {
    for spec in spec_matrix() {
        assert_eq!(spec.stable_hash(), fnv1a64(spec.canonical_key().as_bytes()));
    }
}

#[test]
fn fnv1a64_matches_reference_vectors() {
    // Published FNV-1a 64-bit test vectors.
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
}

/// Builds a spec from sampled field values.
#[allow(clippy::too_many_arguments)]
fn build(
    app: usize,
    platform: bool,
    mode: usize,
    page: usize,
    small: bool,
    trace: bool,
    cap: usize,
    perf: bool,
    sanitize: usize,
    access_ref: bool,
) -> JobSpec {
    let mut s = JobSpec::new(
        AppId::ALL[app % AppId::ALL.len()],
        if platform { "gh200" } else { "mi300a" },
        MemMode::ALL[mode % MemMode::ALL.len()],
    );
    s.page_size = [None, Some(4096), Some(65536)][page % 3];
    s.small = small;
    s.session = SessionOptions {
        trace,
        trace_capacity: [None, Some(1024), Some(4096)][cap % 3],
        perf,
        sanitize: [None, Some(false), Some(true)][sanitize % 3],
        access_ref,
    };
    s
}

proptest! {
    /// Two specs differing in exactly one field must hash differently:
    /// every spec field is injective into the canonical key.
    #[test]
    fn single_field_difference_changes_hash(
        app in 0usize..5, platform in prop::bool::ANY, mode in 0usize..3,
        page in 0usize..3, small in prop::bool::ANY, trace in prop::bool::ANY,
        cap in 0usize..3, perf in prop::bool::ANY, sanitize in 0usize..3,
        access_ref in prop::bool::ANY, flip in 0usize..10,
    ) {
        let base = build(app, platform, mode, page, small, trace, cap, perf, sanitize, access_ref);
        let other = build(
            if flip == 0 { app + 1 } else { app },
            if flip == 1 { !platform } else { platform },
            if flip == 2 { mode + 1 } else { mode },
            if flip == 3 { page + 1 } else { page },
            if flip == 4 { !small } else { small },
            if flip == 5 { !trace } else { trace },
            if flip == 6 { cap + 1 } else { cap },
            if flip == 7 { !perf } else { perf },
            if flip == 8 { sanitize + 1 } else { sanitize },
            if flip == 9 { !access_ref } else { access_ref },
        );
        prop_assert_ne!(base.canonical_key(), other.canonical_key());
        prop_assert_ne!(base.stable_hash(), other.stable_hash());
    }

    /// Hashing is a pure function of the key: equal specs, equal hashes.
    #[test]
    fn equal_specs_hash_equal(
        app in 0usize..5, mode in 0usize..3, small in prop::bool::ANY,
        trace in prop::bool::ANY, perf in prop::bool::ANY,
    ) {
        let a = build(app, true, mode, 0, small, trace, 0, perf, 0, false);
        let b = build(app, true, mode, 0, small, trace, 0, perf, 0, false);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.stable_hash(), b.stable_hash());
    }
}
