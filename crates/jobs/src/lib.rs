//! `gh-jobs` — the concurrent experiment-job executor.
//!
//! A simulation run is a pure function of its [`JobSpec`]: application,
//! platform, memory mode, page size, input scale, and session options.
//! Because PR 9 evicted every piece of ambient state into the per-run
//! [`SessionCtx`](gh_cuda::SessionCtx), many runs — traced, profiled,
//! sanitized, or quiet — can execute *concurrently in one process* and
//! still produce bitwise-identical [`RunReport`]s to a serial sweep.
//! This crate packages that guarantee:
//!
//! * [`JobSpec`] — a plain-data description of one run, with a
//!   [canonical key](JobSpec::canonical_key) and a [stable 64-bit
//!   hash](JobSpec::stable_hash) (FNV-1a over the key, *not* the
//!   randomized std hasher) that is identical across processes and
//!   platforms;
//! * [`run_job`] — execute one spec on the calling thread under its own
//!   session;
//! * [`JobCache`] — a hash-keyed result cache with hit/miss counters: a
//!   hit returns the cached report without re-simulating;
//! * [`run_suite`] — fan a spec list over a [`gh_par`] worker pool
//!   (`workers <= 1` degrades to an inline serial loop), preserving
//!   input order in the output.
//!
//! The executor is a *boundary*: it owns session construction for its
//! workers, so callers hand it [`SessionOptions`] — never env vars.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gh_apps::{AppId, MemMode};
use gh_cuda::SessionOptions;
use gh_par::WorkStealingPool;
use gh_sim::platform::{self, MachineConfig, PlatformError};
use gh_sim::RunReport;

/// A plain-data description of one simulation run. Everything that can
/// change the produced [`RunReport`] — including the session's trace and
/// sanitize options, which add sections to the report — is part of the
/// spec, and therefore of its [hash](JobSpec::stable_hash).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Which application to run.
    pub app: AppId,
    /// Platform registry name (`gh200`, `mi300a`).
    pub platform: String,
    /// Memory-management strategy.
    pub mode: MemMode,
    /// System page size in bytes; `None` = the platform default.
    pub page_size: Option<u64>,
    /// Use the shrunk test inputs (`AppId::run_small`) instead of the
    /// paper-scaled defaults.
    pub small: bool,
    /// Per-run session options (trace, perf, sanitize, reference walk).
    pub session: SessionOptions,
}

impl JobSpec {
    /// A spec with platform defaults and a quiet session.
    pub fn new(app: AppId, platform: &str, mode: MemMode) -> Self {
        Self {
            app,
            platform: platform.to_string(),
            mode,
            page_size: None,
            small: false,
            session: SessionOptions::default(),
        }
    }

    /// The canonical field-tagged key string the stable hash runs over.
    /// Two specs are equal iff their keys are equal, so the key doubles
    /// as a human-readable cache-debugging label.
    pub fn canonical_key(&self) -> String {
        let page = self
            .page_size
            .map_or_else(|| "default".to_string(), |p| p.to_string());
        let cap = self
            .session
            .trace_capacity
            .map_or_else(|| "default".to_string(), |c| c.to_string());
        let sanitize = match self.session.sanitize {
            None => "default",
            Some(true) => "1",
            Some(false) => "0",
        };
        format!(
            "app={};platform={};mode={};page={};small={};trace={};cap={};perf={};sanitize={};ref={}",
            self.app.name(),
            self.platform,
            self.mode.label(),
            page,
            u8::from(self.small),
            u8::from(self.session.trace),
            cap,
            u8::from(self.session.perf),
            sanitize,
            u8::from(self.session.access_ref),
        )
    }

    /// Stable 64-bit job hash: FNV-1a over [`JobSpec::canonical_key`].
    /// Deterministic across processes and runs (unlike
    /// `std::hash::DefaultHasher`, which is seed-randomized), so cache
    /// keys and job labels survive serialization.
    pub fn stable_hash(&self) -> u64 {
        fnv1a64(self.canonical_key().as_bytes())
    }
}

/// FNV-1a 64-bit hash (the offset-basis/prime constants of the reference
/// implementation). Stable by construction; used for job identity.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The result of one executed (or cache-served) job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The spec's stable hash (the cache key).
    pub hash: u64,
    /// True when the report came from the cache without re-simulating.
    pub cached: bool,
    /// The run report (bitwise-identical whether computed or cached).
    pub report: RunReport,
    /// The run's drained self-profile when the spec asked for one.
    /// Always `None` on a cache hit: nothing was simulated. Host times
    /// in here are wall-clock and therefore *not* deterministic — which
    /// is exactly why profiles are never cached alongside reports.
    pub perf: Option<gh_perf::PerfData>,
}

/// A hash-keyed report cache with hit/miss counters. Sound because a
/// [`RunReport`] is a pure function of its [`JobSpec`] (the simulator is
/// deterministic; host-time data lives in [`gh_perf::PerfData`], outside
/// the report). Shared across worker threads via `Arc`.
#[derive(Debug, Default)]
pub struct JobCache {
    map: Mutex<BTreeMap<u64, RunReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl JobCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a job hash up, counting a hit or miss.
    pub fn lookup(&self, hash: u64) -> Option<RunReport> {
        let found = self.map.lock().expect("cache lock").get(&hash).cloned(); // gh-audit: allow(no-unwrap-in-lib) -- a poisoned cache lock means a worker panicked mid-insert; propagating is the only sound response
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a computed report under its job hash.
    pub fn insert(&self, hash: u64, report: &RunReport) {
        self.map
            .lock()
            .expect("cache lock") // gh-audit: allow(no-unwrap-in-lib) -- see lookup: poisoning propagates a worker panic
            .insert(hash, report.clone());
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct reports stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len() // gh-audit: allow(no-unwrap-in-lib) -- see lookup: poisoning propagates a worker panic
    }

    /// Whether the cache holds no reports.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Executes one spec on the calling thread. The machine — and with it
/// the session's trace bus and profiler — is constructed *here*, so the
/// run's observability state lives and dies with this job no matter
/// which worker thread runs it.
pub fn run_job(spec: &JobSpec) -> Result<(RunReport, Option<gh_perf::PerfData>), PlatformError> {
    let p = platform::by_name(&spec.platform)?;
    let cfg = match spec.page_size {
        Some(ps) => MachineConfig::with_page_size(ps),
        None => MachineConfig::default(),
    };
    let m = p.machine_session(&cfg, &spec.session)?;
    let perf = m.rt.session().perf.clone();
    let report = if spec.small {
        spec.app.run_small(m, spec.mode)
    } else {
        spec.app.run(m, spec.mode)
    };
    let perf = perf.is_on().then(|| perf.take());
    Ok((report, perf))
}

fn execute(spec: &JobSpec, cache: &JobCache) -> Result<JobOutcome, PlatformError> {
    let hash = spec.stable_hash();
    if let Some(report) = cache.lookup(hash) {
        return Ok(JobOutcome {
            hash,
            cached: true,
            report,
            perf: None,
        });
    }
    let (report, perf) = run_job(spec)?;
    cache.insert(hash, &report);
    Ok(JobOutcome {
        hash,
        cached: false,
        report,
        perf,
    })
}

/// Runs every spec, returning outcomes in input order.
///
/// `workers <= 1` runs the specs inline on the calling thread (the
/// serial reference path); otherwise a fresh [`WorkStealingPool`] with
/// exactly `workers` threads executes them concurrently. Either way the
/// reports are bitwise-identical — that is the session-scoping
/// invariant, and `tests/sessions.rs` holds it under `diff`.
pub fn run_suite(
    specs: &[JobSpec],
    workers: usize,
    cache: &Arc<JobCache>,
) -> Vec<Result<JobOutcome, PlatformError>> {
    /// One worker's result slot, filled exactly once per spec.
    type Slot = Mutex<Option<Result<JobOutcome, PlatformError>>>;
    if workers <= 1 {
        return specs.iter().map(|s| execute(s, cache)).collect();
    }
    let pool = WorkStealingPool::new(workers);
    let slots: Arc<Vec<Slot>> = Arc::new(specs.iter().map(|_| Mutex::new(None)).collect());
    for (i, spec) in specs.iter().cloned().enumerate() {
        let slots = Arc::clone(&slots);
        let cache = Arc::clone(cache);
        pool.spawn(move || {
            let out = execute(&spec, &cache);
            *slots[i].lock().expect("slot lock") = Some(out); // gh-audit: allow(no-unwrap-in-lib) -- slot poisoning means this very closure panicked; unreachable
        });
    }
    pool.wait_idle();
    slots
        .iter()
        .map(|s| {
            s.lock()
                .expect("slot lock") // gh-audit: allow(no-unwrap-in-lib) -- pool is idle and owned locally; a poisoned slot means a worker panicked
                .take()
                .expect("every job ran to completion") // gh-audit: allow(no-unwrap-in-lib) -- wait_idle guarantees each spawned job stored its outcome
        })
        .collect()
}

/// The full experiment matrix the benches and the CLI suite run: every
/// application × every registered platform × {system, managed}, in
/// deterministic (app, mode, platform) order.
pub fn matrix(small: bool, session: &SessionOptions) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            for name in platform::names() {
                specs.push(JobSpec {
                    app,
                    platform: (*name).to_string(),
                    mode,
                    page_size: None,
                    small,
                    session: session.clone(),
                });
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            small: true,
            ..JobSpec::new(AppId::Hotspot, "gh200", MemMode::System)
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_field_sensitive() {
        let a = spec();
        assert_eq!(a.stable_hash(), spec().stable_hash());
        let mut b = spec();
        b.mode = MemMode::Managed;
        assert_ne!(a.stable_hash(), b.stable_hash());
        let mut c = spec();
        c.session.trace = true;
        assert_ne!(
            a.stable_hash(),
            c.stable_hash(),
            "trace options are part of job identity"
        );
        let mut d = spec();
        d.page_size = Some(4096);
        assert_ne!(a.stable_hash(), d.stable_hash());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn run_job_produces_a_report() {
        let (r, perf) = run_job(&spec()).unwrap();
        assert_eq!(r.platform, "gh200");
        assert!(r.reported_total() > 0);
        assert!(perf.is_none(), "quiet session has no profile");
    }

    #[test]
    fn unknown_platform_is_a_typed_error() {
        let mut s = spec();
        s.platform = "gh300".into();
        assert!(matches!(
            run_job(&s),
            Err(PlatformError::UnknownPlatform(_))
        ));
    }

    #[test]
    fn cache_hit_skips_resimulation() {
        let cache = Arc::new(JobCache::new());
        let first = run_suite(&[spec()], 1, &cache);
        assert!(!first[0].as_ref().unwrap().cached);
        let second = run_suite(&[spec()], 1, &cache);
        let out = second[0].as_ref().unwrap();
        assert!(out.cached);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(
            out.report.to_json(),
            first[0].as_ref().unwrap().report.to_json(),
            "cached report is byte-identical"
        );
    }

    #[test]
    fn matrix_covers_apps_modes_platforms() {
        let specs = matrix(true, &SessionOptions::default());
        assert_eq!(specs.len(), AppId::ALL.len() * 2 * platform::names().len());
        let hashes: std::collections::BTreeSet<u64> =
            specs.iter().map(JobSpec::stable_hash).collect();
        assert_eq!(hashes.len(), specs.len(), "all job hashes distinct");
    }

    #[test]
    fn concurrent_matches_serial() {
        let specs: Vec<JobSpec> = AppId::ALL[..3]
            .iter()
            .map(|&app| JobSpec {
                small: true,
                ..JobSpec::new(app, "gh200", MemMode::System)
            })
            .collect();
        let serial: Vec<String> = run_suite(&specs, 1, &Arc::new(JobCache::new()))
            .into_iter()
            .map(|r| r.unwrap().report.to_json())
            .collect();
        let concurrent: Vec<String> = run_suite(&specs, 4, &Arc::new(JobCache::new()))
            .into_iter()
            .map(|r| r.unwrap().report.to_json())
            .collect();
        assert_eq!(serial, concurrent);
    }
}
