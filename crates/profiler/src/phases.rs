//! Application phase timing.
//!
//! The paper (§3.1) times five phases common to every application version
//! so results are comparable: GPU context init + argument parsing,
//! allocation, CPU-side buffer initialization, computation, and
//! de-allocation. CPU-side initialization is excluded from reported totals
//! because it is single-threaded I/O-bound work identical across versions.

use gh_mem::clock::Ns;

/// The paper's common application phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// GPU context initialization and argument parsing.
    CtxInit,
    /// Memory allocation.
    Alloc,
    /// CPU-side buffer initialization (excluded from reported totals).
    CpuInit,
    /// GPU computation.
    Compute,
    /// De-allocation.
    Dealloc,
}

impl Phase {
    /// All phases in canonical order.
    pub const ALL: [Phase; 5] = [
        Phase::CtxInit,
        Phase::Alloc,
        Phase::CpuInit,
        Phase::Compute,
        Phase::Dealloc,
    ];

    /// Short lowercase label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::CtxInit => "ctx_init",
            Phase::Alloc => "alloc",
            Phase::CpuInit => "cpu_init",
            Phase::Compute => "compute",
            Phase::Dealloc => "dealloc",
        }
    }
}

/// Accumulated duration per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// ctx_init duration (ns).
    pub ctx_init: Ns,
    /// alloc duration (ns).
    pub alloc: Ns,
    /// cpu_init duration (ns).
    pub cpu_init: Ns,
    /// compute duration (ns).
    pub compute: Ns,
    /// dealloc duration (ns).
    pub dealloc: Ns,
}

impl PhaseTimes {
    /// Duration of one phase.
    pub fn get(&self, p: Phase) -> Ns {
        match p {
            Phase::CtxInit => self.ctx_init,
            Phase::Alloc => self.alloc,
            Phase::CpuInit => self.cpu_init,
            Phase::Compute => self.compute,
            Phase::Dealloc => self.dealloc,
        }
    }

    fn get_mut(&mut self, p: Phase) -> &mut Ns {
        match p {
            Phase::CtxInit => &mut self.ctx_init,
            Phase::Alloc => &mut self.alloc,
            Phase::CpuInit => &mut self.cpu_init,
            Phase::Compute => &mut self.compute,
            Phase::Dealloc => &mut self.dealloc,
        }
    }

    /// Total reported time: everything except CPU-side initialization,
    /// following the paper's reporting convention.
    pub fn reported_total(&self) -> Ns {
        self.ctx_init + self.alloc + self.compute + self.dealloc
    }

    /// End-to-end total including CPU init.
    pub fn wall_total(&self) -> Ns {
        self.reported_total() + self.cpu_init
    }
}

/// Stopwatch that buckets virtual-time spans into phases.
///
/// Usage: `timer.enter(Phase::Alloc, clock.now())` at each transition;
/// the span since the previous transition is charged to the *previous*
/// phase. `finish(now)` closes the last phase.
#[derive(Debug, Clone)]
pub struct PhaseTimer {
    times: PhaseTimes,
    current: Option<(Phase, Ns)>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Creates an idle timer.
    pub fn new() -> Self {
        Self {
            times: PhaseTimes::default(),
            current: None,
        }
    }

    /// Switches to `phase` at virtual time `now`, closing any open phase.
    pub fn enter(&mut self, phase: Phase, now: Ns) {
        self.close(now);
        self.current = Some((phase, now));
    }

    fn close(&mut self, now: Ns) {
        if let Some((p, since)) = self.current.take() {
            assert!(now >= since, "phase timer moved backwards");
            *self.times.get_mut(p) += now - since;
        }
    }

    /// Closes the open phase and returns the accumulated times.
    pub fn finish(mut self, now: Ns) -> PhaseTimes {
        self.close(now);
        self.times
    }

    /// Times accumulated so far (open phase not included).
    pub fn so_far(&self) -> PhaseTimes {
        self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_spans() {
        let mut t = PhaseTimer::new();
        t.enter(Phase::Alloc, 0);
        t.enter(Phase::CpuInit, 10);
        t.enter(Phase::Compute, 30);
        t.enter(Phase::Dealloc, 100);
        let times = t.finish(105);
        assert_eq!(times.alloc, 10);
        assert_eq!(times.cpu_init, 20);
        assert_eq!(times.compute, 70);
        assert_eq!(times.dealloc, 5);
        assert_eq!(times.ctx_init, 0);
    }

    #[test]
    fn reported_total_excludes_cpu_init() {
        let times = PhaseTimes {
            ctx_init: 1,
            alloc: 2,
            cpu_init: 1000,
            compute: 4,
            dealloc: 8,
        };
        assert_eq!(times.reported_total(), 15);
        assert_eq!(times.wall_total(), 1015);
    }

    #[test]
    fn reentering_same_phase_accumulates() {
        let mut t = PhaseTimer::new();
        t.enter(Phase::Compute, 0);
        t.enter(Phase::CpuInit, 10);
        t.enter(Phase::Compute, 20);
        let times = t.finish(50);
        assert_eq!(times.compute, 40);
        assert_eq!(times.cpu_init, 10);
    }

    #[test]
    fn finish_without_enter_is_zero() {
        let times = PhaseTimer::new().finish(100);
        assert_eq!(times, PhaseTimes::default());
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn backwards_time_panics() {
        let mut t = PhaseTimer::new();
        t.enter(Phase::Alloc, 100);
        t.enter(Phase::Compute, 50);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Phase::CtxInit.label(), "ctx_init");
        assert_eq!(Phase::ALL.len(), 5);
    }
}
