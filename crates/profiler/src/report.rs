//! Tiny CSV writer for figure harness output.
//!
//! Every figure harness prints a machine-readable CSV block (for plotting)
//! surrounded by a human-readable summary. Hand-rolled on purpose: the
//! offline dependency list has no CSV crate and the need is trivial.

/// An in-memory CSV table.
#[derive(Debug, Clone)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "CSV row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text (quoted only when needed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(c.render(), "a,b\n1,2\n3,4\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_cells_with_commas() {
        let mut c = Csv::new(["x"]);
        c.row(["hello, world"]);
        assert_eq!(c.render(), "x\n\"hello, world\"\n");
    }

    #[test]
    fn escapes_quotes() {
        let mut c = Csv::new(["x"]);
        c.row(["say \"hi\""]);
        assert_eq!(c.render(), "x\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn wrong_width_panics() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["only one"]);
    }

    #[test]
    fn empty_table() {
        let c = Csv::new(["a"]);
        assert!(c.is_empty());
        assert_eq!(c.render(), "a\n");
    }
}
