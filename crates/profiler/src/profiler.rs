//! Sampling memory profiler.

use gh_mem::clock::Ns;

/// One observation of the process memory state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Virtual timestamp (ns).
    pub t: Ns,
    /// CPU resident set size in bytes.
    pub rss: u64,
    /// GPU used memory in bytes (includes the driver baseline, as
    /// `nvidia-smi` reports).
    pub gpu_used: u64,
}

/// Periodic sampler over a stream of state observations.
///
/// The simulator calls [`MemProfiler::observe`] whenever memory state may
/// have changed (after every clock advance). The profiler retains the
/// *latest* observation in each sampling period, emitting it when the
/// period rolls over — the same series a wall-clock poller produces.
#[derive(Debug, Clone)]
pub struct MemProfiler {
    period: Ns,
    samples: Vec<Sample>,
    pending: Option<Sample>,
    enabled: bool,
    peak_rss: u64,
    peak_gpu: u64,
}

impl MemProfiler {
    /// Creates a profiler with the given sampling period. The paper uses
    /// 100 ms of wall time; experiments here typically use 100 µs of
    /// virtual time (the 1:1024 capacity scaling shortens everything).
    pub fn new(period: Ns) -> Self {
        assert!(period > 0, "sampling period must be positive");
        Self {
            period,
            samples: Vec::new(),
            pending: None,
            enabled: true,
            peak_rss: 0,
            peak_gpu: 0,
        }
    }

    /// Disables sampling (zero overhead, keeps already-collected samples).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Sampling period.
    pub fn period(&self) -> Ns {
        self.period
    }

    /// Feeds the current state at virtual time `t`.
    pub fn observe(&mut self, t: Ns, rss: u64, gpu_used: u64) {
        if !self.enabled {
            return;
        }
        self.peak_rss = self.peak_rss.max(rss);
        self.peak_gpu = self.peak_gpu.max(gpu_used);
        let s = Sample { t, rss, gpu_used };
        match self.pending {
            None => self.pending = Some(s),
            Some(p) => {
                if t / self.period > p.t / self.period {
                    // Period rolled over: commit the pending sample.
                    self.samples.push(p);
                    self.pending = Some(s);
                } else {
                    self.pending = Some(s);
                }
            }
        }
    }

    /// Flushes the trailing sample and returns the full series.
    pub fn finish(mut self) -> Vec<Sample> {
        if let Some(p) = self.pending.take() {
            self.samples.push(p);
        }
        self.samples
    }

    /// Samples collected so far (without the pending one).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Peak GPU usage over *every* observation (not just retained
    /// samples).
    pub fn peak_gpu(&self) -> u64 {
        self.peak_gpu
    }

    /// Peak RSS over every observation.
    pub fn peak_rss(&self) -> u64 {
        self.peak_rss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_latest_observation_per_period() {
        let mut p = MemProfiler::new(100);
        p.observe(10, 1, 0);
        p.observe(50, 2, 0);
        p.observe(150, 3, 0); // rolls over; commits the t=50 observation
        p.observe(260, 4, 0); // commits t=150
        let s = p.finish();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].rss, 2);
        assert_eq!(s[1].rss, 3);
        assert_eq!(s[2].rss, 4);
    }

    #[test]
    fn single_observation_is_flushed() {
        let mut p = MemProfiler::new(1000);
        p.observe(5, 7, 9);
        let s = p.finish();
        assert_eq!(
            s,
            vec![Sample {
                t: 5,
                rss: 7,
                gpu_used: 9
            }]
        );
    }

    #[test]
    fn empty_profiler_finishes_empty() {
        let p = MemProfiler::new(10);
        assert!(p.finish().is_empty());
    }

    #[test]
    fn peaks_include_pending() {
        let mut p = MemProfiler::new(1_000_000);
        p.observe(1, 10, 100);
        p.observe(2, 5, 200);
        assert_eq!(p.peak_rss(), 10);
        assert_eq!(p.peak_gpu(), 200);
    }

    #[test]
    fn disabled_profiler_collects_nothing() {
        let mut p = MemProfiler::new(10);
        p.set_enabled(false);
        p.observe(100, 1, 1);
        assert!(p.finish().is_empty());
    }

    #[test]
    fn timestamps_monotone_in_output() {
        let mut p = MemProfiler::new(7);
        for t in 0..100 {
            p.observe(t * 3, t, t);
        }
        let s = p.finish();
        assert!(s.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        MemProfiler::new(0);
    }
}
