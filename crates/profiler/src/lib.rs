//! `gh-profiler` — the paper's memory-utilization profiler, in virtual time.
//!
//! The paper's tool (§3.2) samples, every 100 ms, the process resident set
//! size (`/proc/<pid>/smaps_rollup`) and the GPU used memory
//! (`nvidia-smi`, which includes a ~600 MB driver baseline). This crate
//! reproduces that: the simulator pushes `(virtual time, RSS, GPU used)`
//! observations whenever state changes, and the profiler keeps one sample
//! per sampling period — exactly what a wall-clock poller would have seen.
//!
//! It also provides the phase timer used to report the paper's common
//! application phases (context init, allocation, CPU init, compute,
//! de-allocation) and small CSV helpers for the figure harnesses.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod phases;
pub mod plot;
pub mod profiler;
pub mod report;
pub mod trace;

pub use phases::{Phase, PhaseTimer, PhaseTimes};
pub use plot::{ascii_chart, plot_memory_profile};
pub use profiler::{MemProfiler, Sample};
pub use report::Csv;
pub use trace::{to_chrome_json, TraceEvent};
