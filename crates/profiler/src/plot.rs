//! Terminal plotting of profiler series: the Figure 4/5 memory profiles
//! rendered as ASCII so `cargo bench` output is inspectable without a
//! plotting pipeline.

use crate::profiler::Sample;

/// Renders one or more named series as a fixed-size ASCII chart. Each
/// series is a `(label, glyph, values)` triple sampled at the same
/// timestamps; values are auto-scaled to the global maximum.
pub fn ascii_chart(
    title: &str,
    t_ms: &[f64],
    series: &[(&str, char, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let mut out = format!("{title}\n");
    if t_ms.is_empty() || series.is_empty() {
        out.push_str("(no samples)\n");
        return out;
    }
    let t0 = t_ms[0];
    let t1 = *t_ms.last().unwrap_or(&t0);
    let tspan = (t1 - t0).max(1e-9);
    let vmax = series
        .iter()
        .flat_map(|(_, _, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (_, glyph, values) in series {
        // Sample-and-hold per column (what a step profile looks like).
        let mut last = 0.0;
        let mut vi = 0;
        for (col, cell) in (0..width).zip(0..width) {
            let t = t0 + tspan * col as f64 / (width - 1) as f64;
            while vi < t_ms.len() && t_ms[vi] <= t {
                last = values[vi];
                vi += 1;
            }
            let row = ((last / vmax) * (height - 1) as f64).round() as usize;
            let row = (height - 1).saturating_sub(row);
            if grid[row][cell] == ' ' || grid[row][cell] != *glyph {
                grid[row][cell] = *glyph;
            }
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let axis = if i == 0 {
            format!("{vmax:>8.1} |")
        } else if i == height - 1 {
            format!("{:>8.1} |", 0.0)
        } else {
            "         |".to_string()
        };
        out.push_str(&axis);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           {:<10.2}{}{:>10.2} ms\n",
        "-".repeat(width),
        t0,
        " ".repeat(width.saturating_sub(20)),
        t1
    ));
    for (label, glyph, _) in series {
        out.push_str(&format!("           {glyph} = {label}\n"));
    }
    out
}

/// Convenience: plots RSS and GPU-used (MiB) from a profiler sample
/// series.
pub fn plot_memory_profile(title: &str, samples: &[Sample], width: usize, height: usize) -> String {
    let t: Vec<f64> = samples.iter().map(|s| s.t as f64 / 1e6).collect();
    let rss: Vec<f64> = samples
        .iter()
        .map(|s| s.rss as f64 / (1 << 20) as f64)
        .collect();
    let gpu: Vec<f64> = samples
        .iter()
        .map(|s| s.gpu_used as f64 / (1 << 20) as f64)
        .collect();
    ascii_chart(
        title,
        &t,
        &[("RSS (MiB)", '*', rss), ("GPU used (MiB)", 'o', gpu)],
        width,
        height,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_axes_and_legend() {
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let s = vec![("up", '*', vec![0.0, 1.0, 2.0, 3.0])];
        let c = ascii_chart("test", &t, &s, 40, 8);
        assert!(c.starts_with("test\n"));
        assert!(c.contains('*'));
        assert!(c.contains("* = up"));
        assert!(c.contains("+----"));
    }

    #[test]
    fn empty_series_render_placeholder() {
        let c = ascii_chart("t", &[], &[], 40, 8);
        assert!(c.contains("(no samples)"));
    }

    #[test]
    fn memory_profile_plots_both_series() {
        let samples = vec![
            Sample {
                t: 0,
                rss: 0,
                gpu_used: 1 << 20,
            },
            Sample {
                t: 1_000_000,
                rss: 8 << 20,
                gpu_used: 1 << 20,
            },
            Sample {
                t: 2_000_000,
                rss: 0,
                gpu_used: 9 << 20,
            },
        ];
        let c = plot_memory_profile("hotspot", &samples, 60, 10);
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("RSS"));
    }

    #[test]
    fn peak_value_appears_on_axis() {
        let t = vec![0.0, 1.0];
        let s = vec![("v", '#', vec![0.0, 42.0])];
        let c = ascii_chart("t", &t, &s, 30, 6);
        assert!(c.contains("42.0"), "{c}");
    }
}
