//! Chrome-trace (chrome://tracing / Perfetto) export of a run's
//! timeline: kernels, copies, migrations and phases as complete events.

use gh_mem::clock::Ns;

/// One timeline event (a `"ph": "X"` complete event in the trace format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event label (kernel name, "memcpy H2D", …).
    pub name: String,
    /// Category: `kernel`, `copy`, `migration`, `runtime`, `phase`.
    pub cat: &'static str,
    /// Start timestamp, virtual ns.
    pub start: Ns,
    /// Duration, virtual ns.
    pub dur: Ns,
}

/// Renders events as a Chrome-trace JSON document. Timestamps are
/// emitted in microseconds (the format's unit), with nanosecond
/// fractions preserved.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Proper JSON escaping (shared with every exporter via gh-trace);
        // the old char-dropping filter corrupted names containing quotes.
        let esc = gh_trace::json::quoted(&e.name);
        out.push_str(&format!(
            "{{\"name\":{esc},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            e.cat,
            e.start as f64 / 1000.0,
            e.dur.max(1) as f64 / 1000.0,
            match e.cat {
                "kernel" => 1,
                "copy" => 2,
                "migration" => 3,
                "phase" => 0,
                _ => 4,
            }
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json_shape() {
        let events = vec![
            TraceEvent {
                name: "qv_gate#1".into(),
                cat: "kernel",
                start: 1000,
                dur: 5000,
            },
            TraceEvent {
                name: "memcpy H2D".into(),
                cat: "copy",
                start: 0,
                dur: 2000,
            },
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"qv_gate#1\""));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"tid\":2"));
        // Timestamps in microseconds.
        assert!(json.contains("\"ts\":1.000"));
    }

    #[test]
    fn escapes_hostile_names() {
        let events = vec![TraceEvent {
            name: "bad\"name\\with\ncontrol".into(),
            cat: "runtime",
            start: 0,
            dur: 1,
        }];
        let json = to_chrome_json(&events);
        // Escaped, not dropped: every character of the name survives.
        assert!(json.contains(r#"bad\"name\\with\ncontrol"#), "{json}");
    }

    #[test]
    fn zero_duration_events_get_minimum_width() {
        let events = vec![TraceEvent {
            name: "instant".into(),
            cat: "runtime",
            start: 5,
            dur: 0,
        }];
        assert!(to_chrome_json(&events).contains("\"dur\":0.001"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(to_chrome_json(&[]), "{\"traceEvents\":[]}");
    }
}
