//! Property tests for the memory-model building blocks.

use gh_mem::pagetable::PageTable;
use gh_mem::phys::{Node, PhysMem};
use gh_mem::radix::RadixTable;
use gh_mem::tlb::Tlb;
use gh_units::{Bytes, Pages, Vpn, VpnRange};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// RadixTable must behave exactly like a HashMap under a random
    /// insert/remove/get workload.
    #[test]
    fn radix_matches_hashmap(ops in proptest::collection::vec(
        (0u8..3, 0u64..5000, 0u32..1000), 0..400)) {
        let mut radix = RadixTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (op, key, val) in ops {
            match op {
                0 => {
                    prop_assert_eq!(radix.insert(key, val), model.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(radix.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(radix.get(key), model.get(&key));
                }
            }
            prop_assert_eq!(radix.len(), model.len());
        }
    }

    /// Residency counters must always equal a recount from scratch.
    #[test]
    fn pagetable_residency_is_consistent(ops in proptest::collection::vec(
        (0u8..3, 0u64..200, prop::bool::ANY), 0..300)) {
        let mut pt = PageTable::new(4096);
        let mut model: HashMap<u64, Node> = HashMap::new();
        let mut frame = 0u64;
        for (op, vpn, on_gpu) in ops {
            let node = if on_gpu { Node::Gpu } else { Node::Cpu };
            match op {
                0 => {
                    model.entry(vpn).or_insert_with(|| {
                        frame += 1;
                        pt.populate(Vpn::new(vpn), node, frame);
                        node
                    });
                }
                1 => {
                    pt.unmap(Vpn::new(vpn));
                    model.remove(&vpn);
                }
                _ => {
                    if model.contains_key(&vpn) {
                        frame += 1;
                        pt.remap(Vpn::new(vpn), node, frame);
                        model.insert(vpn, node);
                    }
                }
            }
            let cpu = model.values().filter(|&&n| n == Node::Cpu).count() as u64;
            let gpu = model.values().filter(|&&n| n == Node::Gpu).count() as u64;
            prop_assert_eq!(pt.resident_pages(Node::Cpu), Pages::new(cpu));
            prop_assert_eq!(pt.resident_pages(Node::Gpu), Pages::new(gpu));
        }
    }

    /// PhysMem usage never exceeds capacity and free+used == capacity.
    #[test]
    fn physmem_accounting_invariants(ops in proptest::collection::vec(
        (prop::bool::ANY, prop::bool::ANY, 1u64..5000), 0..200)) {
        let mut pm = PhysMem::new(Bytes::new(100_000), Bytes::new(50_000), Bytes::new(1_000));
        let mut live: Vec<(Node, Bytes)> = Vec::new();
        for (is_alloc, on_gpu, bytes) in ops {
            let node = if on_gpu { Node::Gpu } else { Node::Cpu };
            if is_alloc {
                if pm.alloc(node, Bytes::new(bytes)).is_ok() {
                    live.push((node, Bytes::new(bytes)));
                }
            } else if let Some(pos) = live.iter().position(|&(n, _)| n == node) {
                let (_, b) = live.swap_remove(pos);
                pm.release(node, b);
            }
            for n in [Node::Cpu, Node::Gpu] {
                prop_assert!(pm.used(n) <= pm.capacity(n));
                prop_assert_eq!(pm.used(n) + pm.free(n), pm.capacity(n));
            }
        }
    }

    /// After fill, a vpn hits until invalidated; after invalidate it
    /// misses. (Single-set stress to force evictions elsewhere.)
    #[test]
    fn tlb_invalidate_is_coherent(vpns in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut tlb = Tlb::new(4096);
        for &v in &vpns {
            tlb.fill(Vpn::new(v));
            prop_assert!(tlb.lookup(Vpn::new(v)), "fresh fill must hit");
            tlb.invalidate(Vpn::new(v));
            prop_assert!(!tlb.lookup(Vpn::new(v)), "invalidate must remove");
        }
    }

    /// unmap_range removes exactly the populated pages in range.
    #[test]
    fn pagetable_unmap_range_exact(present in proptest::collection::btree_set(0u64..500, 0..200),
                                   lo in 0u64..500, span in 0u64..200) {
        let mut pt = PageTable::new(65536);
        for (i, &v) in present.iter().enumerate() {
            pt.populate(Vpn::new(v), Node::Cpu, i as u64 + 1);
        }
        let hi = lo + span;
        let removed = pt.unmap_range(VpnRange::new(Vpn::new(lo), Vpn::new(hi)));
        let expected: Vec<u64> = present.iter().copied().filter(|&v| v >= lo && v < hi).collect();
        let mut got: Vec<u64> = removed.iter().map(|(v, _)| v.get()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(pt.populated_pages().get() as usize, present.len() - removed.len());
    }
}

proptest! {
    /// The set cache never reports more misses than touches and a
    /// working set within capacity is fully retained across passes.
    #[test]
    fn setcache_retention(lines in 1u64..400, passes in 1u8..5) {
        let mut c = gh_mem::SetCache::new(Bytes::new(1 << 20), Bytes::new(128), 8); // 8192 lines
        for p in 0..passes {
            for i in 0..lines {
                let hit = c.access(i * 128);
                if p > 0 {
                    prop_assert!(hit, "line {i} must be retained (pass {p})");
                }
            }
        }
        prop_assert_eq!(c.misses(), lines);
        prop_assert_eq!(c.hits(), lines * (passes as u64 - 1));
    }

    /// Link cost is monotone in bytes and direction-consistent.
    #[test]
    fn link_cost_monotone(a in 1u64..100_000_000, b in 1u64..100_000_000) {
        use gh_mem::{Direction, Link};
        let mut l = Link::new(375.0, 297.0, 0.55, 850);
        let (lo, hi) = (a.min(b), a.max(b));
        let t_lo = l.bulk(Bytes::new(lo), Direction::H2D);
        let t_hi = l.bulk(Bytes::new(hi), Direction::H2D);
        prop_assert!(t_lo <= t_hi);
        let h2d = l.bulk(Bytes::new(hi), Direction::H2D);
        let d2h = l.bulk(Bytes::new(hi), Direction::D2H);
        prop_assert!(d2h >= h2d, "D2H is the slower direction");
    }
}
