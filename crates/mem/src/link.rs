//! NVLink-C2C interconnect cost model.
//!
//! Two access regimes matter on Grace Hopper:
//!
//! * **bulk transfers** (`cudaMemcpy`, page migrations, prefetches) reach
//!   the measured link bandwidth (375 GB/s H2D, 297 GB/s D2H, paper §2.1);
//! * **cacheline-grain remote access** (the new direct-access path) moves
//!   64 B (CPU-initiated) or 128 B (GPU-initiated) lines and sustains only
//!   a fraction of the bulk bandwidth for sparse streams.
//!
//! The link also carries ATS translation requests and atomics; their cost
//! is charged by the [`crate::smmu::Smmu`] model.

use gh_units::{Bytes, Lines};

/// Transfer direction over the C2C link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host (CPU/LPDDR) to device (GPU/HBM).
    H2D,
    /// Device to host.
    D2H,
}

/// The NVLink-C2C model: cost functions plus cumulative byte counters.
#[derive(Debug, Clone)]
pub struct Link {
    h2d_bw: f64,
    d2h_bw: f64,
    random_eff: f64,
    latency: u64,
    bytes_h2d: Bytes,
    bytes_d2h: Bytes,
    bulk_h2d: Bytes,
    bulk_d2h: Bytes,
    bus: gh_trace::Bus,
}

impl Link {
    /// Builds the link from calibrated parameters. Observability is off
    /// until [`Link::with_obs`] injects the session's bus.
    pub fn new(h2d_bw: f64, d2h_bw: f64, random_eff: f64, latency: u64) -> Self {
        assert!(h2d_bw > 0.0 && d2h_bw > 0.0);
        assert!((0.0..=1.0).contains(&random_eff) && random_eff > 0.0);
        Self {
            h2d_bw,
            d2h_bw,
            random_eff,
            latency,
            bytes_h2d: Bytes::ZERO,
            bytes_d2h: Bytes::ZERO,
            bulk_h2d: Bytes::ZERO,
            bulk_d2h: Bytes::ZERO,
            bus: gh_trace::Bus::off(),
        }
    }

    /// Attaches the owning session's trace bus. Recording is report-only:
    /// costs and counters are bit-identical either way.
    pub fn with_obs(mut self, bus: gh_trace::Bus) -> Self {
        self.bus = bus;
        self
    }

    fn bw(&self, dir: Direction) -> f64 {
        match dir {
            Direction::H2D => self.h2d_bw,
            Direction::D2H => self.d2h_bw,
        }
    }

    /// Cost of a bulk transfer of `bytes` in `dir`; records traffic.
    pub fn bulk(&mut self, bytes: Bytes, dir: Direction) -> u64 {
        if bytes.is_zero() {
            return 0;
        }
        self.record(bytes, dir);
        match dir {
            Direction::H2D => self.bulk_h2d += bytes,
            Direction::D2H => self.bulk_d2h += bytes,
        }
        let dur = self.latency + crate::params::CostParams::transfer_ns(bytes, self.bw(dir));
        self.emit(bytes, dir, dur);
        dur
    }

    /// Cost of `lines` cacheline-grain remote accesses of `line_bytes`
    /// each, in `dir`; records traffic. The stream pays the link latency
    /// once (accesses pipeline) plus bytes at `eff × bandwidth`, where
    /// the caller picks the efficiency for the access class (dense
    /// stream vs irregular).
    pub fn cacheline_stream_eff(
        &mut self,
        lines: Lines,
        line_bytes: Bytes,
        dir: Direction,
        eff: f64,
    ) -> u64 {
        if lines.is_zero() {
            return 0;
        }
        let bytes = lines.bytes(line_bytes);
        self.record(bytes, dir);
        let dur = self.latency + crate::params::CostParams::transfer_ns(bytes, self.bw(dir) * eff);
        self.emit(bytes, dir, dur);
        dur
    }

    /// [`Link::cacheline_stream_eff`] with the link's default
    /// (irregular-access) efficiency.
    pub fn cacheline_stream(&mut self, lines: Lines, line_bytes: Bytes, dir: Direction) -> u64 {
        self.cacheline_stream_eff(lines, line_bytes, dir, self.random_eff)
    }

    /// Cost of one remote atomic operation (single line round trip).
    pub fn atomic(&mut self, line_bytes: Bytes, dir: Direction) -> u64 {
        self.record(line_bytes, dir);
        let dur = 2 * self.latency;
        self.emit(line_bytes, dir, dur);
        dur
    }

    fn record(&mut self, bytes: Bytes, dir: Direction) {
        match dir {
            Direction::H2D => self.bytes_h2d += bytes,
            Direction::D2H => self.bytes_d2h += bytes,
        }
    }

    /// Reports the transfer to the observability bus (no-op when tracing
    /// is disabled; never affects costs).
    fn emit(&self, bytes: Bytes, dir: Direction, dur: u64) {
        if !self.bus.is_on() {
            return;
        }
        let tdir = match dir {
            Direction::H2D => gh_trace::Dir::H2D,
            Direction::D2H => gh_trace::Dir::D2H,
        };
        self.bus.emit(gh_trace::Event::LinkXfer {
            dir: tdir,
            bytes: bytes.get(),
            dur,
        });
        self.bus.count(
            match dir {
                Direction::H2D => "link.bytes_h2d",
                Direction::D2H => "link.bytes_d2h",
            },
            bytes.get(),
        );
        self.bus.count("link.xfers", 1);
        self.bus.observe("link.xfer_bytes", bytes.get());
    }

    /// Cumulative bytes moved host→device (bulk + cacheline + atomics).
    pub fn bytes_h2d(&self) -> Bytes {
        self.bytes_h2d
    }

    /// Cumulative bytes moved device→host (bulk + cacheline + atomics).
    pub fn bytes_d2h(&self) -> Bytes {
        self.bytes_d2h
    }

    /// Cumulative bytes moved host→device by bulk transfers only
    /// (migrations, memcpys, prefetches). The invariant sanitizer checks
    /// this against the sum of page migrations and explicit transfers.
    pub fn bulk_bytes_h2d(&self) -> Bytes {
        self.bulk_h2d
    }

    /// Cumulative bytes moved device→host by bulk transfers only.
    pub fn bulk_bytes_d2h(&self) -> Bytes {
        self.bulk_d2h
    }

    /// Achieved bulk bandwidth for a transfer, bytes/ns (for the
    /// Comm|Scope-style bandwidth bench).
    pub fn effective_bulk_bw(&self, bytes: Bytes, dir: Direction) -> f64 {
        let t = self.latency + crate::params::CostParams::transfer_ns(bytes, self.bw(dir));
        bytes.get() as f64 / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    fn link() -> Link {
        Link::new(375.0, 297.0, 0.35, 850)
    }

    #[test]
    fn bulk_cost_scales_with_bytes() {
        let mut l = link();
        let t1 = l.bulk(b(375_000), Direction::H2D);
        let t2 = l.bulk(b(750_000), Direction::H2D);
        assert_eq!(t1, 850 + 1000);
        assert_eq!(t2, 850 + 2000);
    }

    #[test]
    fn d2h_is_slower_than_h2d() {
        let mut l = link();
        let h2d = l.bulk(b(10_000_000), Direction::H2D);
        let d2h = l.bulk(b(10_000_000), Direction::D2H);
        assert!(d2h > h2d);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut l = link();
        assert_eq!(l.bulk(b(0), Direction::H2D), 0);
        assert_eq!(l.cacheline_stream(Lines::new(0), b(128), Direction::H2D), 0);
        assert_eq!(l.bytes_h2d(), b(0));
    }

    #[test]
    fn cacheline_stream_is_derated() {
        let mut l = link();
        let bulk = l.bulk(b(1_280_000), Direction::H2D);
        let stream = l.cacheline_stream(Lines::new(10_000), b(128), Direction::H2D);
        assert!(
            stream > bulk * 2,
            "sparse stream ({stream}) must be much slower than bulk ({bulk})"
        );
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut l = link();
        l.bulk(b(100), Direction::H2D);
        l.cacheline_stream(Lines::new(2), b(64), Direction::D2H);
        l.atomic(b(128), Direction::H2D);
        assert_eq!(l.bytes_h2d(), b(100 + 128));
        assert_eq!(l.bytes_d2h(), b(128));
    }

    #[test]
    fn bulk_counters_exclude_cacheline_and_atomic_traffic() {
        let mut l = link();
        l.bulk(b(100), Direction::H2D);
        l.bulk(b(40), Direction::D2H);
        l.cacheline_stream(Lines::new(2), b(64), Direction::H2D);
        l.atomic(b(128), Direction::D2H);
        assert_eq!(l.bulk_bytes_h2d(), b(100));
        assert_eq!(l.bulk_bytes_d2h(), b(40));
        assert_eq!(l.bytes_h2d(), b(100 + 128));
        assert_eq!(l.bytes_d2h(), b(40 + 128));
    }

    #[test]
    fn effective_bw_approaches_peak_for_large_transfers() {
        let l = link();
        let bw = l.effective_bulk_bw(b(1_000_000_000), Direction::H2D);
        assert!(bw > 370.0 && bw <= 375.0, "got {bw}");
        let small = l.effective_bulk_bw(b(4096), Direction::H2D);
        assert!(
            small < 10.0,
            "latency must dominate small transfers: {small}"
        );
    }

    #[test]
    fn atomics_pay_round_trip() {
        let mut l = link();
        assert_eq!(l.atomic(b(64), Direction::D2H), 1700);
    }
}
