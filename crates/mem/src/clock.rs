//! Deterministic virtual clock.
//!
//! All simulator components express costs in virtual nanoseconds and accrue
//! them on a single [`Clock`]. Because the simulator is single-threaded,
//! the clock is a plain monotone counter — no atomics, no wall time — which
//! makes every experiment bit-reproducible.

/// Virtual time in nanoseconds.
pub type Ns = u64;

/// A monotone virtual clock.
#[derive(Debug, Default, Clone)]
pub struct Clock {
    now: Ns,
}

impl Clock {
    /// Creates a clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Advances the clock by `dt` nanoseconds and returns the new time.
    #[inline]
    pub fn advance(&mut self, dt: Ns) -> Ns {
        self.now = self
            .now
            .checked_add(dt)
            .expect("virtual clock overflow: experiment ran for > 580 years"); // gh-audit: allow(no-unwrap-in-lib) -- deliberate overflow trap on the virtual clock
        self.now
    }

    /// Resets the clock to t = 0 (used between independent experiment runs).
    pub fn reset(&mut self) {
        self.now = 0;
    }
}

/// Formats a virtual duration for human-readable harness output, e.g.
/// `1.234 ms` or `12.3 s`.
pub fn format_ns(ns: gh_units::SimNs) -> String {
    let ns = ns.get();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_returns_new_time() {
        let mut c = Clock::new();
        assert_eq!(c.advance(7), 7);
        assert_eq!(c.advance(3), 10);
    }

    #[test]
    fn reset_rewinds_to_zero() {
        let mut c = Clock::new();
        c.advance(100);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut c = Clock::new();
        c.advance(u64::MAX);
        c.advance(1);
    }

    #[test]
    fn formatting_picks_unit() {
        let f = |n: u64| format_ns(gh_units::SimNs::new(n));
        assert_eq!(f(12), "12 ns");
        assert_eq!(f(1_500), "1.500 us");
        assert_eq!(f(2_500_000), "2.500 ms");
        assert_eq!(f(3_200_000_000), "3.200 s");
    }

    #[test]
    fn formatting_sub_microsecond_edges() {
        let f = |n: u64| format_ns(gh_units::SimNs::new(n));
        assert_eq!(f(0), "0 ns");
        assert_eq!(f(1), "1 ns");
        assert_eq!(f(999), "999 ns");
        assert_eq!(f(1_000), "1.000 us");
        assert_eq!(f(999_999), "999.999 us");
        assert_eq!(f(1_000_000), "1.000 ms");
    }

    #[test]
    fn formatting_multi_second_durations() {
        let f = |n: u64| format_ns(gh_units::SimNs::new(n));
        assert_eq!(f(999_999_999), "1000.000 ms");
        assert_eq!(f(1_000_000_000), "1.000 s");
        assert_eq!(f(61_500_000_000), "61.500 s");
        assert_eq!(f(3_600_000_000_000), "3600.000 s");
    }
}
