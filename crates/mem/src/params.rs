//! Cost-model parameters for the simulated GH200.
//!
//! All bandwidths are in bytes per nanosecond, which conveniently equals
//! GB/s (10⁹ B / 10⁹ ns). All fixed costs are virtual nanoseconds.
//!
//! The defaults are calibrated in two steps: link/memory bandwidths come
//! straight from the paper's §2.1 measurements (STREAM and Comm|Scope on
//! real hardware); per-event software costs (fault service, PTE teardown,
//! driver work) are set so the paper's published *ratios* hold — e.g. the
//! 4 KB→64 KB dealloc improvement (Fig 6, avg 15.9×) and the 33-qubit
//! system-memory init speedup at 64 KB pages (Fig 9, ~5×).

use gh_units::{Bytes, PageSize, Pages};

pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * KIB;

/// A cost-parameter consistency violation found by [`CostParams::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `system_page_size` is not a power of two.
    PageSizeNotPowerOfTwo(u64),
    /// `system_page_size` falls outside `[4 KiB, gpu_page_size]`.
    PageSizeOutOfRange {
        /// The offending page size.
        page: u64,
        /// The configured GPU page size (upper bound).
        max: u64,
    },
    /// `gpu_driver_baseline` leaves no usable GPU memory.
    DriverBaselineExceedsCapacity {
        /// The configured driver baseline.
        baseline: u64,
        /// The GPU capacity it must stay below.
        capacity: u64,
    },
    /// `counter_region` is not a multiple of the system page size.
    CounterRegionMisaligned {
        /// The configured counter region.
        region: u64,
        /// The system page size it must align to.
        page: u64,
    },
    /// A bandwidth/throughput field is zero or negative.
    NonPositiveBandwidth(&'static str),
    /// An efficiency factor falls outside `[0, 1]`.
    EfficiencyOutOfRange(&'static str),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::PageSizeNotPowerOfTwo(page) => {
                write!(f, "system_page_size must be a power of two (got {page})")
            }
            ParamError::PageSizeOutOfRange { page, max } => write!(
                f,
                "system_page_size must be in [4 KiB, gpu_page_size = {max}] (got {page})"
            ),
            ParamError::DriverBaselineExceedsCapacity { baseline, capacity } => write!(
                f,
                "driver baseline exceeds GPU capacity ({baseline} >= {capacity})"
            ),
            ParamError::CounterRegionMisaligned { region, page } => write!(
                f,
                "counter_region ({region}) must be a multiple of the system page size ({page})"
            ),
            ParamError::NonPositiveBandwidth(name) => write!(f, "{name} must be positive"),
            ParamError::EfficiencyOutOfRange(name) => {
                write!(f, "{name} must be in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Every tunable of the memory model in one place.
///
/// Construct with [`CostParams::default`] (the calibrated GH200 model) and
/// override individual fields for ablation studies.
#[derive(Debug, Clone)]
pub struct CostParams {
    // ---- capacities (scaled 1:1024 from the real 480 GB + 96 GB) ----
    /// CPU (Grace, LPDDR5X) physical capacity in bytes.
    pub cpu_mem_bytes: u64,
    /// GPU (Hopper, HBM3) physical capacity in bytes.
    pub gpu_mem_bytes: u64,
    /// GPU memory held by the driver at all times (`nvidia-smi` baseline,
    /// ~600 MB on real hardware; scaled here).
    pub gpu_driver_baseline: u64,
    /// Unified physical pool: CPU and GPU share one physical memory (the
    /// MI300A model). When set, `gpu_mem_bytes` is the size of the single
    /// pool, capacity is shared between the nodes (which remain as
    /// attribution labels only), and page migration/eviction between tiers
    /// is physically meaningless and disabled by the runtime.
    pub unified_pool: bool,

    // ---- page sizes ----
    /// System page size (4 KiB or 64 KiB on Grace).
    pub system_page_size: u64,
    /// GPU-exclusive page table page size (2 MiB on Hopper).
    pub gpu_page_size: u64,

    // ---- bandwidths, bytes/ns == GB/s ----
    /// GPU HBM3 measured STREAM bandwidth (paper: 3.4 TB/s).
    pub hbm_bw: f64,
    /// CPU LPDDR5X measured STREAM bandwidth (paper: 486 GB/s).
    pub lpddr_bw: f64,
    /// NVLink-C2C host-to-device bulk bandwidth (paper: 375 GB/s).
    pub c2c_h2d_bw: f64,
    /// NVLink-C2C device-to-host bulk bandwidth (paper: 297 GB/s).
    pub c2c_d2h_bw: f64,
    /// Effective fraction of C2C bandwidth reached by *dense streaming*
    /// cacheline-grain remote access. Massively parallel sequential
    /// access keeps the link nearly saturated.
    pub c2c_stream_eff: f64,
    /// Effective fraction of C2C bandwidth reached by *irregular*
    /// cacheline-grain remote access (strided segments, gathers). The
    /// dominant sparse-access penalty — full 128 B lines per touch — is
    /// accounted separately by line rounding; this factor only covers
    /// the residual scheduling/row-buffer inefficiency.
    pub c2c_random_eff: f64,
    /// Effective fraction of HBM bandwidth reached by irregular access.
    pub hbm_random_eff: f64,
    /// Single-threaded CPU initialization bandwidth (bytes/ns). The paper
    /// notes Rodinia CPU-side init is single-threaded and I/O bound.
    pub cpu_init_bw: f64,

    // ---- latencies ----
    /// Base latency of one NVLink-C2C round trip (ns).
    pub c2c_latency: u64,
    /// Base HBM access latency (ns).
    pub hbm_latency: u64,

    // ---- cacheline granularities (paper §2.1.1) ----
    /// Transfer granularity of CPU-initiated remote access (64 B).
    pub cpu_cacheline: u64,
    /// Transfer granularity of GPU-initiated remote access (128 B).
    pub gpu_cacheline: u64,

    // ---- OS paging costs ----
    /// Fixed CPU cost to service a CPU-originated first-touch minor fault
    /// (page table walk + PTE install), excluding zero-fill.
    pub cpu_fault_fixed: u64,
    /// Fixed CPU cost to service one *GPU-originated* (SMMU/ATS) fault on
    /// system-allocated memory. These faults are serviced serially by the
    /// OS on the CPU, which is why GPU-side first touch of system memory is
    /// expensive (paper §5.1.2).
    pub ats_fault_fixed: u64,
    /// Per-byte component of ATS fault service (zero-fill, PTE setup and
    /// shootdown work scale with the page). Together with the fixed part
    /// this calibrates the paper's Fig 9 ratio: GPU-side init of system
    /// memory improves ~5× going from 4 KiB to 64 KiB pages.
    pub ats_fault_per_byte: f64,
    /// Per-page PTE teardown cost on `free`/`munmap`. Dealloc time is
    /// proportional to page count, giving the 4 KB vs 64 KB gap of Fig 6.
    pub pte_teardown: u64,
    /// Cost of creating a VMA (`malloc` of a large region is just a VMA).
    pub vma_create: u64,
    /// Per-page cost of `cudaHostRegister`-style pre-population (pinning +
    /// PTE install, amortized bulk path, cheaper than fault-driven touch).
    pub host_register_per_page: u64,
    /// Page-table-walk cost paid by the SMMU on a TLB miss (ns).
    pub smmu_walk: u64,
    /// Cost of one ATS translation request over NVLink-C2C (ns).
    pub ats_translate: u64,

    // ---- GPU caches ----
    /// Modelled GPU L2 capacity in bytes (H100: 50 MB; kept unscaled —
    /// cacheline reuse is an absolute-hardware effect). Small irregular
    /// remote accesses that re-touch a cached line hit in L2 instead of
    /// crossing NVLink-C2C again.
    pub gpu_l2_bytes: u64,

    // ---- GPU TLB ----
    /// Number of entries in the modelled (last-level) GPU TLB.
    pub gpu_tlb_entries: usize,

    // ---- CUDA runtime costs ----
    /// GPU context initialization (paper §4: charged at first CUDA API call
    /// for explicit/managed, at first kernel launch for system memory).
    /// Scaled 1:1024 like the capacities — this one-time driver cost is
    /// size-independent on real hardware (~250 ms) and would otherwise
    /// dominate every scaled comparison.
    pub ctx_init: u64,
    /// Fixed cost of `cudaMalloc`.
    pub cuda_malloc_fixed: u64,
    /// Per-GPU-page (2 MiB) cost of `cudaMalloc` PTE setup.
    pub cuda_malloc_per_page: u64,
    /// Fixed cost of `cudaMallocManaged` (VMA bookkeeping only).
    pub cuda_malloc_managed_fixed: u64,
    /// Fixed cost of `cudaFree`.
    pub cuda_free_fixed: u64,
    /// Fixed per-call cost of `cudaMemcpy`.
    pub memcpy_fixed: u64,
    /// Fixed kernel-launch overhead.
    pub kernel_launch: u64,
    /// Effective GPU compute throughput in work-units per ns. Kernels
    /// declare their work in abstract units (≈ simple arithmetic ops).
    pub gpu_throughput: f64,

    // ---- managed memory (UVM) driver ----
    /// Cost of one GPU page-fault *batch* service (GPU replayable fault →
    /// driver interrupt → migration setup). Literature: ~20–50 µs.
    pub uvm_fault_batch: u64,
    /// Maximum pages migrated per fault batch (the driver coalesces
    /// faults within a 2 MiB VA block).
    pub uvm_migration_block: u64,
    /// Fixed per-block migration cost on top of the transfer time.
    pub uvm_migration_fixed: u64,
    /// Fixed cost of `cudaMemPrefetchAsync` per call.
    pub prefetch_fixed: u64,
    /// Fixed per-evicted-block cost when GPU memory is exhausted.
    pub evict_fixed: u64,
    /// Managed GPU-side first-touch: pages are created directly in the GPU
    /// page table at 2 MiB granularity; per-2MiB-page cost.
    pub uvm_gpu_first_touch_per_page: u64,

    // ---- access-counter (system memory) migration driver ----
    /// Remote-access count per region that triggers a notification
    /// (paper §2.2.1: default 256).
    pub counter_threshold: u32,
    /// Region granularity tracked by the access counters (2 MiB VA block).
    pub counter_region: u64,
    /// Notifications the driver services per kernel launch. Bounding this
    /// spreads working-set migration over several iterations, matching the
    /// SRAD behaviour in Fig 10: SRAD's image spans ~7 counter regions and
    /// runs 2 kernels/iteration, so budget 1 completes migration around
    /// iteration 4.
    pub counter_budget_per_kernel: usize,
    /// Fixed cost per counter-based migrated system page.
    pub counter_migrate_fixed: u64,
    /// Fixed driver cost per serviced notification (interrupt handling,
    /// VA-block lookup, migration setup).
    pub counter_region_fixed: u64,
    /// Maximum pages moved per serviced notification (DMA queue depth).
    /// With 4 KiB pages this caps a service at 512 KiB, so large working
    /// sets migrate noticeably slower than with 64 KiB pages — one of the
    /// two page-size effects behind Figs 7 and 10.
    pub counter_service_max_pages: u64,
    /// In-flight migration stall: accesses that race a page being
    /// migrated stall until the transfer completes, and both the blocked
    /// VA window and the expected wait grow with the migration unit. The
    /// charge is `transfer_time × (page_size/4 KiB − 1) × factor` per
    /// service — zero for 4 KiB pages, significant for 64 KiB (the
    /// paper's "temporary latency increase when the computation accesses
    /// pages that are being migrated", §5.2).
    pub counter_stall_factor: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            cpu_mem_bytes: 480 * MIB,
            gpu_mem_bytes: 96 * MIB,
            gpu_driver_baseline: 600 * KIB,
            unified_pool: false,

            system_page_size: 64 * KIB,
            gpu_page_size: 2 * MIB,

            hbm_bw: 3400.0,
            lpddr_bw: 486.0,
            c2c_h2d_bw: 375.0,
            c2c_d2h_bw: 297.0,
            c2c_stream_eff: 0.92,
            c2c_random_eff: 0.55,
            hbm_random_eff: 0.55,
            cpu_init_bw: 9.0,

            c2c_latency: 850,
            hbm_latency: 450,

            cpu_cacheline: 64,
            gpu_cacheline: 128,

            cpu_fault_fixed: 1_100,
            ats_fault_fixed: 3_600,
            ats_fault_per_byte: 0.15,
            pte_teardown: 190,
            vma_create: 2_500,
            host_register_per_page: 650,
            smmu_walk: 550,
            ats_translate: 1_000,

            gpu_l2_bytes: 40 * MIB,

            gpu_tlb_entries: 3_072,

            ctx_init: 244_000,
            cuda_malloc_fixed: 120_000,
            cuda_malloc_per_page: 1_300,
            cuda_malloc_managed_fixed: 120_000,
            cuda_free_fixed: 90_000,
            memcpy_fixed: 12_000,
            kernel_launch: 6_000,
            gpu_throughput: 9_000.0,

            uvm_fault_batch: 28_000,
            uvm_migration_block: 2 * MIB,
            uvm_migration_fixed: 18_000,
            prefetch_fixed: 25_000,
            evict_fixed: 9_000,
            uvm_gpu_first_touch_per_page: 22_000,

            counter_threshold: 256,
            counter_region: 2 * MIB,
            counter_budget_per_kernel: 1,
            counter_migrate_fixed: 150,
            counter_region_fixed: 15_000,
            counter_service_max_pages: 128,
            counter_stall_factor: 2.0,
        }
    }
}

impl CostParams {
    /// The calibrated default with a 4 KiB system page size.
    pub fn with_4k_pages() -> Self {
        Self {
            system_page_size: 4 * KIB,
            ..Self::default()
        }
    }

    /// The calibrated default with a 64 KiB system page size.
    pub fn with_64k_pages() -> Self {
        Self::default()
    }

    /// Time to move `bytes` at `bw` bytes/ns: rounds half-up and
    /// saturates (see [`gh_units::transfer_ns`]), with a 1 ns floor for
    /// any non-zero transfer.
    pub fn transfer_ns(bytes: Bytes, bw: f64) -> u64 {
        gh_units::transfer_ns(bytes, bw)
    }

    /// The system page size as a typed [`PageSize`].
    pub fn system_page(&self) -> PageSize {
        PageSize::new(self.system_page_size)
    }

    /// The GPU-exclusive page size as a typed [`PageSize`].
    pub fn gpu_page(&self) -> PageSize {
        PageSize::new(self.gpu_page_size)
    }

    /// Number of system pages spanned by `bytes`.
    pub fn system_pages(&self, bytes: Bytes) -> Pages {
        bytes.pages_ceil(self.system_page())
    }

    /// Number of GPU (2 MiB) pages spanned by `bytes`.
    pub fn gpu_pages(&self, bytes: Bytes) -> Pages {
        bytes.pages_ceil(self.gpu_page())
    }

    /// Validates internal consistency; called by the machine builder.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.system_page_size.is_power_of_two() {
            return Err(ParamError::PageSizeNotPowerOfTwo(self.system_page_size));
        }
        if self.system_page_size < 4 * KIB || self.system_page_size > self.gpu_page_size {
            return Err(ParamError::PageSizeOutOfRange {
                page: self.system_page_size,
                max: self.gpu_page_size,
            });
        }
        if self.gpu_driver_baseline >= self.gpu_mem_bytes {
            return Err(ParamError::DriverBaselineExceedsCapacity {
                baseline: self.gpu_driver_baseline,
                capacity: self.gpu_mem_bytes,
            });
        }
        if !self.counter_region.is_multiple_of(self.system_page_size) {
            return Err(ParamError::CounterRegionMisaligned {
                region: self.counter_region,
                page: self.system_page_size,
            });
        }
        for (name, v) in [
            ("hbm_bw", self.hbm_bw),
            ("lpddr_bw", self.lpddr_bw),
            ("c2c_h2d_bw", self.c2c_h2d_bw),
            ("c2c_d2h_bw", self.c2c_d2h_bw),
            ("gpu_throughput", self.gpu_throughput),
            ("cpu_init_bw", self.cpu_init_bw),
        ] {
            if v <= 0.0 {
                return Err(ParamError::NonPositiveBandwidth(name));
            }
        }
        for (name, v) in [
            ("c2c_random_eff", self.c2c_random_eff),
            ("c2c_stream_eff", self.c2c_stream_eff),
            ("hbm_random_eff", self.hbm_random_eff),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ParamError::EfficiencyOutOfRange(name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CostParams::default().validate().unwrap();
        CostParams::with_4k_pages().validate().unwrap();
    }

    #[test]
    fn page_size_presets() {
        assert_eq!(CostParams::with_4k_pages().system_page_size, 4 * KIB);
        assert_eq!(CostParams::with_64k_pages().system_page_size, 64 * KIB);
    }

    #[test]
    fn transfer_time_rounds_half_up() {
        assert_eq!(CostParams::transfer_ns(Bytes::new(0), 100.0), 0);
        assert_eq!(CostParams::transfer_ns(Bytes::new(1), 1000.0), 1);
        assert_eq!(CostParams::transfer_ns(Bytes::new(1000), 100.0), 10);
    }

    #[test]
    fn page_count_helpers() {
        let p = CostParams::with_4k_pages();
        assert_eq!(p.system_pages(Bytes::new(1)), Pages::new(1));
        assert_eq!(p.system_pages(Bytes::new(4 * KIB)), Pages::new(1));
        assert_eq!(p.system_pages(Bytes::new(4 * KIB + 1)), Pages::new(2));
        assert_eq!(p.gpu_pages(Bytes::new(2 * MIB)), Pages::new(1));
        assert_eq!(p.gpu_pages(Bytes::new(2 * MIB + 1)), Pages::new(2));
    }

    #[test]
    fn validate_rejects_bad_page_size() {
        let mut p = CostParams {
            system_page_size: 3000,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        p.system_page_size = 4 * MIB;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_efficiency() {
        let p = CostParams {
            c2c_random_eff: 1.5,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_driver_baseline_over_capacity() {
        let mut p = CostParams::default();
        p.gpu_driver_baseline = p.gpu_mem_bytes;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bandwidths_match_paper_section_2_1() {
        let p = CostParams::default();
        assert_eq!(p.hbm_bw, 3400.0);
        assert_eq!(p.lpddr_bw, 486.0);
        assert_eq!(p.c2c_h2d_bw, 375.0);
        assert_eq!(p.c2c_d2h_bw, 297.0);
    }

    #[test]
    fn counter_defaults_match_paper() {
        let p = CostParams::default();
        assert_eq!(p.counter_threshold, 256);
        assert_eq!(p.counter_region, 2 * MIB);
    }

    #[test]
    fn page_presets_differ_only_in_page_size() {
        let four = CostParams::with_4k_pages();
        let sixty_four = CostParams::with_64k_pages();
        assert_eq!(four.system_page_size, 4 * KIB);
        assert_eq!(sixty_four.system_page_size, 64 * KIB);
        assert_eq!(four.gpu_page_size, sixty_four.gpu_page_size);
        assert_eq!(four.hbm_bw, sixty_four.hbm_bw);
        assert_eq!(four.cpu_mem_bytes, sixty_four.cpu_mem_bytes);
        assert_eq!(four.counter_region, sixty_four.counter_region);
        assert!(!four.unified_pool && !sixty_four.unified_pool);
    }

    #[test]
    fn transfer_ns_zero_bytes_is_free() {
        // Zero-byte transfers must not be charged the 1 ns floor.
        assert_eq!(CostParams::transfer_ns(Bytes::new(0), 0.001), 0);
        assert_eq!(CostParams::transfer_ns(Bytes::new(0), 1e12), 0);
    }

    #[test]
    fn transfer_ns_sub_page_sizes_hit_the_floor() {
        // Any non-zero transfer takes at least 1 virtual ns, even when
        // bytes/bw rounds to zero (one byte over a 3.4 TB/s link).
        assert_eq!(CostParams::transfer_ns(Bytes::new(1), 3400.0), 1);
        assert_eq!(CostParams::transfer_ns(Bytes::new(63), 3400.0), 1);
        assert_eq!(CostParams::transfer_ns(Bytes::new(4 * KIB - 1), 1e9), 1);
    }

    #[test]
    fn transfer_ns_rounds_half_up_at_bandwidth_boundaries() {
        // Exact multiples divide evenly; fractional quotients round
        // half-up deterministically instead of always ceiling.
        assert_eq!(CostParams::transfer_ns(Bytes::new(1000), 100.0), 10);
        assert_eq!(CostParams::transfer_ns(Bytes::new(1001), 100.0), 10); // 10.01 -> 10
        assert_eq!(CostParams::transfer_ns(Bytes::new(1049), 100.0), 10); // 10.49 -> 10
        assert_eq!(CostParams::transfer_ns(Bytes::new(1050), 100.0), 11); // 10.50 -> 11
        assert_eq!(CostParams::transfer_ns(Bytes::new(64 * KIB), 64.0), KIB);
        assert_eq!(CostParams::transfer_ns(Bytes::new(64 * KIB + 1), 64.0), KIB); // +1/64 ns
        assert_eq!(
            CostParams::transfer_ns(Bytes::new(64 * KIB + 32), 64.0),
            KIB + 1
        ); // +.5 ns
           // Paper bandwidths at exact 1 GiB boundaries.
        assert_eq!(CostParams::transfer_ns(Bytes::new(375 * 1000), 375.0), 1000);
        assert_eq!(CostParams::transfer_ns(Bytes::new(297 * 1000), 297.0), 1000);
    }

    #[test]
    fn transfer_ns_saturates_instead_of_truncating() {
        // bytes/bw beyond u64::MAX saturates to the rail; the old
        // truncating `as u64` produced an arbitrary wrapped value.
        assert_eq!(
            CostParams::transfer_ns(Bytes::new(u64::MAX), 1e-12),
            u64::MAX
        );
        assert_eq!(
            CostParams::transfer_ns(Bytes::new(u64::MAX), f64::MIN_POSITIVE),
            u64::MAX
        );
    }

    #[test]
    fn transfer_ns_is_monotone_in_bytes() {
        let mut prev = 0;
        for bytes in [0, 1, 64, 4 * KIB, 64 * KIB, MIB, 2 * MIB + 1] {
            let t = CostParams::transfer_ns(Bytes::new(bytes), 486.0);
            assert!(t >= prev, "transfer_ns not monotone at {bytes} bytes");
            prev = t;
        }
    }

    #[test]
    fn system_pages_rounds_up_at_page_boundaries() {
        let p = CostParams::with_64k_pages();
        assert_eq!(p.system_pages(Bytes::new(0)), Pages::new(0));
        assert_eq!(p.system_pages(Bytes::new(64 * KIB - 1)), Pages::new(1));
        assert_eq!(p.system_pages(Bytes::new(64 * KIB)), Pages::new(1));
        assert_eq!(p.system_pages(Bytes::new(64 * KIB + 1)), Pages::new(2));
    }

    #[test]
    fn validate_errors_are_typed_and_printable() {
        let bad_pow2 = CostParams {
            system_page_size: 3000,
            ..Default::default()
        };
        assert_eq!(
            bad_pow2.validate().unwrap_err(),
            ParamError::PageSizeNotPowerOfTwo(3000)
        );

        let bad_range = CostParams {
            system_page_size: 4 * MIB,
            ..Default::default()
        };
        assert!(matches!(
            bad_range.validate().unwrap_err(),
            ParamError::PageSizeOutOfRange { page, .. } if page == 4 * MIB
        ));

        let bad_bw = CostParams {
            lpddr_bw: 0.0,
            ..Default::default()
        };
        let err = bad_bw.validate().unwrap_err();
        assert_eq!(err, ParamError::NonPositiveBandwidth("lpddr_bw"));
        assert_eq!(err.to_string(), "lpddr_bw must be positive");

        let bad_region = CostParams {
            counter_region: 2 * MIB + 1,
            ..Default::default()
        };
        assert!(matches!(
            bad_region.validate().unwrap_err(),
            ParamError::CounterRegionMisaligned { .. }
        ));

        let bad_eff = CostParams {
            hbm_random_eff: -0.1,
            ..Default::default()
        };
        assert_eq!(
            bad_eff.validate().unwrap_err(),
            ParamError::EfficiencyOutOfRange("hbm_random_eff")
        );
    }

    #[test]
    fn validate_error_display_names_the_baseline() {
        let mut p = CostParams::default();
        p.gpu_driver_baseline = p.gpu_mem_bytes;
        let msg = p.validate().unwrap_err().to_string();
        assert!(msg.contains("driver baseline exceeds GPU capacity"));
    }
}
