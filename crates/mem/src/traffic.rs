//! Per-kernel and cumulative memory-traffic accounting.
//!
//! Mirrors what the paper measures with Nsight Compute's Memory Workload
//! Analysis (per-kernel HBM / C2C / L1↔L2 traffic, Figs 10 and 12) and with
//! Nsight Systems (fault and migration counts).

/// Traffic and event counts for a single kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTraffic {
    /// Bytes read from local GPU memory (HBM3).
    pub hbm_read: u64,
    /// Bytes written to local GPU memory.
    pub hbm_write: u64,
    /// Bytes read remotely over NVLink-C2C (GPU reading CPU-resident data).
    pub c2c_read: u64,
    /// Bytes written remotely over NVLink-C2C.
    pub c2c_write: u64,
    /// Bytes exchanged between L1 and L2 (total data fed to the SMs; the
    /// paper uses this as the compute-side data-rate indicator, Fig 12).
    pub l1l2: u64,
    /// GPU replayable page faults serviced (managed memory).
    pub gpu_faults: u64,
    /// SMMU/ATS faults serviced by the OS (system memory GPU first touch).
    pub ats_faults: u64,
    /// GPU TLB misses.
    pub tlb_misses: u64,
    /// Pages migrated CPU→GPU during the kernel (any engine).
    pub pages_migrated_in: u64,
    /// Pages migrated/evicted GPU→CPU during the kernel.
    pub pages_migrated_out: u64,
    /// Bytes migrated CPU→GPU.
    pub bytes_migrated_in: u64,
    /// Bytes migrated GPU→CPU.
    pub bytes_migrated_out: u64,
    /// Access-counter notifications raised during the kernel.
    pub notifications: u64,
}

impl KernelTraffic {
    /// Adds another record into this one.
    pub fn merge(&mut self, other: &KernelTraffic) {
        self.hbm_read = self.hbm_read.saturating_add(other.hbm_read);
        self.hbm_write = self.hbm_write.saturating_add(other.hbm_write);
        self.c2c_read = self.c2c_read.saturating_add(other.c2c_read);
        self.c2c_write = self.c2c_write.saturating_add(other.c2c_write);
        self.l1l2 = self.l1l2.saturating_add(other.l1l2);
        self.gpu_faults = self.gpu_faults.saturating_add(other.gpu_faults);
        self.ats_faults = self.ats_faults.saturating_add(other.ats_faults);
        self.tlb_misses = self.tlb_misses.saturating_add(other.tlb_misses);
        self.pages_migrated_in = self
            .pages_migrated_in
            .saturating_add(other.pages_migrated_in);
        self.pages_migrated_out = self
            .pages_migrated_out
            .saturating_add(other.pages_migrated_out);
        self.bytes_migrated_in = self
            .bytes_migrated_in
            .saturating_add(other.bytes_migrated_in);
        self.bytes_migrated_out = self
            .bytes_migrated_out
            .saturating_add(other.bytes_migrated_out);
        self.notifications = self.notifications.saturating_add(other.notifications);
    }

    /// Total bytes the kernel pulled through the memory system.
    pub fn total_read(&self) -> u64 {
        self.hbm_read + self.c2c_read
    }
}

/// Cumulative traffic across every kernel launched so far, with per-kernel
/// history for figure harnesses that plot per-iteration series (Fig 10).
#[derive(Debug, Clone, Default)]
pub struct TrafficTotals {
    totals: KernelTraffic,
    history: Vec<(String, KernelTraffic)>,
}

impl TrafficTotals {
    /// Creates empty accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished kernel's traffic under `name`.
    pub fn push(&mut self, name: &str, t: KernelTraffic) {
        self.totals.merge(&t);
        self.history.push((name.to_string(), t));
    }

    /// Cumulative totals.
    pub fn totals(&self) -> &KernelTraffic {
        &self.totals
    }

    /// Per-kernel history in launch order.
    pub fn history(&self) -> &[(String, KernelTraffic)] {
        &self.history
    }

    /// History entries whose kernel name starts with `prefix`.
    pub fn kernels_named(&self, prefix: &str) -> Vec<&KernelTraffic> {
        self.history
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, t)| t)
            .collect()
    }

    /// Clears history and totals.
    pub fn reset(&mut self) {
        self.totals = KernelTraffic::default();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = KernelTraffic {
            hbm_read: 10,
            c2c_read: 5,
            gpu_faults: 1,
            ..Default::default()
        };
        let b = KernelTraffic {
            hbm_read: 3,
            c2c_read: 2,
            ats_faults: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hbm_read, 13);
        assert_eq!(a.c2c_read, 7);
        assert_eq!(a.gpu_faults, 1);
        assert_eq!(a.ats_faults, 4);
        assert_eq!(a.total_read(), 20);
    }

    #[test]
    fn totals_accumulate_history() {
        let mut tt = TrafficTotals::new();
        tt.push(
            "srad1#0",
            KernelTraffic {
                hbm_read: 100,
                ..Default::default()
            },
        );
        tt.push(
            "srad2#0",
            KernelTraffic {
                hbm_read: 50,
                ..Default::default()
            },
        );
        assert_eq!(tt.totals().hbm_read, 150);
        assert_eq!(tt.history().len(), 2);
        assert_eq!(tt.kernels_named("srad1").len(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut tt = TrafficTotals::new();
        tt.push("k", KernelTraffic::default());
        tt.reset();
        assert_eq!(tt.history().len(), 0);
        assert_eq!(tt.totals().hbm_read, 0);
    }
}
