//! Set-associative TLB model.
//!
//! Models the GPU's last-level TLB (fed either by the GMMU walking the
//! GPU-exclusive page table or by ATS translations returned by the SMMU).
//! A 4-way set-associative organization with LRU within each set is used —
//! realistic enough to capture capacity behaviour on large working sets
//! while keeping lookup O(ways).

use gh_units::{widen, Vpn, VpnRange};

/// One TLB way: the cached translation tag plus its LRU stamp.
#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u64,
    stamp: u64,
}

const EMPTY: u64 = u64::MAX;

impl Slot {
    const VACANT: Slot = Slot {
        tag: EMPTY,
        stamp: 0,
    };
}

/// A set-associative translation lookaside buffer over virtual page
/// numbers. Stores only presence (the simulator keeps PTE payloads in the
/// page tables); the TLB's job in the cost model is hit/miss accounting.
#[derive(Debug, Clone)]
pub struct Tlb {
    ways: usize,
    sets: usize,
    /// `sets × ways` slots; `tag == u64::MAX` means empty.
    slots: Vec<Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    bus: gh_trace::Bus,
    perf: gh_perf::Perf,
}

impl Tlb {
    /// Creates a TLB with approximately `entries` capacity, 4-way
    /// set-associative. `entries` is rounded to a power-of-two set count.
    /// Observability is off until [`Tlb::with_obs`] injects the session's
    /// handles.
    pub fn new(entries: usize) -> Self {
        let ways = 4usize;
        let sets = (entries / ways).next_power_of_two().max(1);
        Self {
            ways,
            sets,
            slots: vec![Slot::VACANT; sets * ways],
            tick: 0,
            hits: 0,
            misses: 0,
            bus: gh_trace::Bus::off(),
            perf: gh_perf::Perf::off(),
        }
    }

    /// Attaches the owning session's observability handles. Recording is
    /// report-only: attached or not, the TLB's hit/miss/evict decisions
    /// are bit-identical.
    pub fn with_obs(mut self, bus: gh_trace::Bus, perf: gh_perf::Perf) -> Self {
        self.bus = bus;
        self.perf = perf;
        self
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_of(&self, tag: u64) -> usize {
        // Multiplicative hash spreads sequential VPNs across sets while
        // staying deterministic.
        ((tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.sets - 1)
    }

    /// Looks up `vpn`; returns true on hit. Misses do **not** insert — the
    /// caller decides (after walking the page table) whether to `fill`.
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        self.perf.count(gh_perf::Ctr::TlbWalks, 1);
        let tag = vpn.get();
        self.tick = self.tick.saturating_add(1);
        let base = self.set_of(tag) * self.ways;
        for w in 0..self.ways {
            let slot = &mut self.slots[base + w];
            if slot.tag == tag {
                slot.stamp = self.tick;
                self.hits = self.hits.saturating_add(1);
                return true;
            }
        }
        self.perf.count(gh_perf::Ctr::TlbMisses, 1);
        self.misses = self.misses.saturating_add(1);
        false
    }

    /// Inserts a translation for `vpn`, evicting the LRU way of its set if
    /// needed.
    pub fn fill(&mut self, vpn: Vpn) {
        let tag = vpn.get();
        self.tick = self.tick.saturating_add(1);
        let base = self.set_of(tag) * self.ways;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let slot = &self.slots[base + w];
            if slot.tag == tag {
                // Already present; refresh.
                self.slots[base + w].stamp = self.tick;
                return;
            }
            if slot.tag == EMPTY {
                victim = base + w;
                oldest = 0;
            } else if slot.stamp < oldest {
                victim = base + w;
                oldest = slot.stamp;
            }
        }
        let evicted = self.slots[victim].tag;
        if evicted != EMPTY {
            self.bus.emit(gh_trace::Event::TlbEvict { va: evicted });
            self.bus.count("tlb.evictions", 1);
        }
        self.slots[victim] = Slot {
            tag,
            stamp: self.tick,
        };
    }

    /// Batched equivalent of `for v in keys { if !lookup(v) { fill(v) } }`:
    /// walks every key in `keys`, filling on miss, and returns the miss
    /// count.
    ///
    /// The per-slot state machine (tick advance on lookup and on fill, LRU
    /// stamps, victim choice, `TlbEvict` trace events in key order) is
    /// bit-identical to the per-key calls; only the perf counters and the
    /// hit/miss statistics are charged once per run instead of once per
    /// key.
    pub fn lookup_range(&mut self, keys: VpnRange) -> u64 {
        let n = keys.count().get();
        if n == 0 {
            return 0;
        }
        self.perf.count(gh_perf::Ctr::TlbWalks, n);
        let mut misses: u64 = 0;
        for vpn in keys {
            let tag = vpn.get();
            self.tick = self.tick.saturating_add(1);
            let base = self.set_of(tag) * self.ways;
            let mut hit = false;
            for w in 0..self.ways {
                let slot = &mut self.slots[base + w];
                if slot.tag == tag {
                    slot.stamp = self.tick;
                    hit = true;
                    break;
                }
            }
            if hit {
                continue;
            }
            misses = misses.saturating_add(1);
            // Inline fill(): the tag is known absent, so go straight to
            // victim selection. Keeps the exact tick/victim/trace behaviour
            // of `fill` for an absent tag.
            self.tick = self.tick.saturating_add(1);
            let mut victim = base;
            let mut oldest = u64::MAX;
            for w in 0..self.ways {
                let slot = &self.slots[base + w];
                if slot.tag == EMPTY {
                    victim = base + w;
                    oldest = 0;
                } else if slot.stamp < oldest {
                    victim = base + w;
                    oldest = slot.stamp;
                }
            }
            let evicted = self.slots[victim].tag;
            if evicted != EMPTY {
                self.bus.emit(gh_trace::Event::TlbEvict { va: evicted });
                self.bus.count("tlb.evictions", 1);
            }
            self.slots[victim] = Slot {
                tag,
                stamp: self.tick,
            };
        }
        self.hits = self.hits.saturating_add(n.saturating_sub(misses));
        self.misses = self.misses.saturating_add(misses);
        if misses > 0 {
            self.perf.count(gh_perf::Ctr::TlbMisses, misses);
        }
        misses
    }

    /// Invalidates a single translation (TLB shootdown on unmap/migrate).
    pub fn invalidate(&mut self, vpn: Vpn) {
        let tag = vpn.get();
        let base = self.set_of(tag) * self.ways;
        for w in 0..self.ways {
            if self.slots[base + w].tag == tag {
                self.slots[base + w] = Slot::VACANT;
                return;
            }
        }
    }

    /// Invalidates every translation in the VPN range.
    pub fn invalidate_range(&mut self, vpns: VpnRange) {
        // For huge ranges a full flush is cheaper than per-VPN probes,
        // mirroring what real kernels do for large shootdowns.
        if vpns.count().get() > widen(self.capacity()) * 4 {
            self.flush();
            return;
        }
        for v in vpns {
            self.invalidate(v);
        }
    }

    /// Drops every translation.
    pub fn flush(&mut self) {
        self.slots.fill(Slot::VACANT);
    }

    /// Resets hit/miss statistics (used between kernel launches).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    fn r(lo: u64, hi: u64) -> VpnRange {
        VpnRange::new(v(lo), v(hi))
    }

    #[test]
    fn capacity_rounds_to_power_of_two_sets() {
        let t = Tlb::new(3000);
        assert!(t.capacity() >= 3000);
        assert_eq!(t.capacity() % 4, 0);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = Tlb::new(64);
        assert!(!t.lookup(v(42)));
        t.fill(v(42));
        assert!(t.lookup(v(42)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn invalidate_removes_translation() {
        let mut t = Tlb::new(64);
        t.fill(v(7));
        assert!(t.lookup(v(7)));
        t.invalidate(v(7));
        assert!(!t.lookup(v(7)));
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut t = Tlb::new(4); // 1 set × 4 ways after rounding
        assert_eq!(t.capacity(), 4);
        // Find 5 vpns mapping to set 0 (all do: only one set).
        for n in 0..4u64 {
            t.fill(v(n));
        }
        // Touch 1..4 so 0 is LRU.
        for n in 1..4u64 {
            assert!(t.lookup(v(n)));
        }
        t.fill(v(100));
        assert!(!t.lookup(v(0)), "LRU entry must have been evicted");
        assert!(t.lookup(v(100)));
    }

    #[test]
    fn fill_is_idempotent() {
        let mut t = Tlb::new(16);
        t.fill(v(9));
        t.fill(v(9));
        assert!(t.lookup(v(9)));
        t.invalidate(v(9));
        assert!(!t.lookup(v(9)), "single invalidate removes both fills");
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::new(64);
        for n in 0..32 {
            t.fill(v(n));
        }
        t.flush();
        for n in 0..32 {
            assert!(!t.lookup(v(n)));
        }
    }

    #[test]
    fn invalidate_range_small_and_large() {
        let mut t = Tlb::new(16);
        for n in 0..8 {
            t.fill(v(n));
        }
        t.invalidate_range(r(0, 4));
        assert!(!t.lookup(v(1)));
        assert!(t.lookup(v(5)));
        // Very large range triggers the full-flush path.
        t.invalidate_range(r(0, 1_000_000));
        assert!(!t.lookup(v(5)));
    }

    #[test]
    fn working_set_larger_than_capacity_mostly_misses() {
        let mut t = Tlb::new(64);
        // Stream 10× the capacity twice; second pass should still miss a lot.
        for n in 0..640u64 {
            if !t.lookup(v(n)) {
                t.fill(v(n));
            }
        }
        let m1 = t.misses();
        t.reset_stats();
        for n in 0..640u64 {
            if !t.lookup(v(n)) {
                t.fill(v(n));
            }
        }
        assert_eq!(m1, 640);
        assert!(
            t.misses() > 300,
            "streaming working set must keep missing, got {}",
            t.misses()
        );
    }

    #[test]
    fn lookup_range_matches_per_key_sequence() {
        let mut per_key = Tlb::new(16); // tiny: forces evictions
        let mut batched = Tlb::new(16);
        // Overlapping streams so the batch sees hits, misses, and LRU
        // evictions; interleave single-key ops to check state carries over.
        let ranges = [r(0, 40), r(20, 60), r(0, 8), r(55, 90), (r(0, 0))];
        for vr in ranges {
            let mut expect: u64 = 0;
            for v in vr {
                if !per_key.lookup(v) {
                    per_key.fill(v);
                    expect += 1;
                }
            }
            assert_eq!(batched.lookup_range(vr), expect);
            per_key.invalidate(v(5));
            batched.invalidate(v(5));
        }
        assert_eq!(per_key.hits(), batched.hits());
        assert_eq!(per_key.misses(), batched.misses());
        // Identical internal state: every key agrees on hit/miss from here.
        for n in 0..100u64 {
            assert_eq!(per_key.lookup(v(n)), batched.lookup(v(n)), "key {n}");
        }
    }

    #[test]
    fn small_working_set_hits_on_repeat() {
        let mut t = Tlb::new(256);
        for _ in 0..3 {
            for n in 0..100u64 {
                if !t.lookup(v(n)) {
                    t.fill(v(n));
                }
            }
        }
        assert_eq!(t.misses(), 100);
        assert_eq!(t.hits(), 200);
    }
}
