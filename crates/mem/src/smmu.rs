//! System Memory Management Unit (SMMU) model.
//!
//! On Grace, the SMMU (Arm SMMUv3) walks the system-wide page table on
//! behalf of both the CPU and — via ATS requests arriving over NVLink-C2C —
//! the GPU's ATS-TBU. The model charges a walk cost per translation and a
//! request cost per ATS round trip, and counts both so experiments can
//! report translation pressure.

/// SMMU cost/counter model.
#[derive(Debug, Clone)]
pub struct Smmu {
    walk_cost: u64,
    ats_cost: u64,
    walks: u64,
    ats_requests: u64,
    faults_raised: u64,
}

impl Smmu {
    /// Creates an SMMU with the given page-walk and ATS request costs (ns).
    pub fn new(walk_cost: u64, ats_cost: u64) -> Self {
        Self {
            walk_cost,
            ats_cost,
            walks: 0,
            ats_requests: 0,
            faults_raised: 0,
        }
    }

    /// Cost of a CPU-side translation that missed the CPU TLB: one walk.
    pub fn cpu_walk(&mut self) -> u64 {
        self.walks = self.walks.saturating_add(1);
        self.walk_cost
    }

    /// Cost of servicing one ATS translation request from the GPU: the
    /// C2C request round trip plus a system-page-table walk.
    pub fn ats_translate(&mut self) -> u64 {
        self.ats_requests += 1;
        self.walks = self.walks.saturating_add(1);
        self.ats_cost + self.walk_cost
    }

    /// Records that a walk found no valid PTE and the SMMU raised a fault
    /// for the OS to handle (the fault-service cost itself is charged by
    /// the OS model).
    pub fn raise_fault(&mut self) {
        self.faults_raised = self.faults_raised.saturating_add(1);
    }

    /// Total page-table walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Total ATS requests serviced.
    pub fn ats_requests(&self) -> u64 {
        self.ats_requests
    }

    /// Total faults raised toward the OS.
    pub fn faults_raised(&self) -> u64 {
        self.faults_raised
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_charges_and_counts() {
        let mut s = Smmu::new(550, 1000);
        assert_eq!(s.cpu_walk(), 550);
        assert_eq!(s.walks(), 1);
    }

    #[test]
    fn ats_translate_includes_request_and_walk() {
        let mut s = Smmu::new(550, 1000);
        assert_eq!(s.ats_translate(), 1550);
        assert_eq!(s.ats_requests(), 1);
        assert_eq!(s.walks(), 1);
    }

    #[test]
    fn faults_counted_separately() {
        let mut s = Smmu::new(1, 1);
        s.ats_translate();
        s.raise_fault();
        s.raise_fault();
        assert_eq!(s.faults_raised(), 2);
        assert_eq!(s.ats_requests(), 1);
    }
}
