//! Page tables.
//!
//! Two instances of [`PageTable`] model the GH200's two tables:
//!
//! * the **system-wide page table** (CPU-resident, managed by the OS,
//!   walked by the SMMU for both CPU accesses and GPU ATS requests), with
//!   the system page size (4 KiB or 64 KiB on Grace); its pages may be
//!   physically located on either node;
//! * the **GPU-exclusive page table** (GPU-resident, only visible to the
//!   GMMU), with 2 MiB pages, holding `cudaMalloc` allocations and managed
//!   pages whose current physical location is GPU memory.
//!
//! Entries are keyed by virtual page number (`vaddr / page_size`).

use crate::phys::Node;
use crate::radix::RadixTable;
use gh_units::{widen, Bytes, PageSize, Pages, Vpn, VpnRange};

/// A page table entry: where the page physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// NUMA node holding the frame.
    pub node: Node,
    /// Opaque frame id from [`crate::phys::PhysMem`].
    pub frame: u64,
    /// Set when the page has been written since population (used to decide
    /// whether eviction must copy data back).
    pub dirty: bool,
}

/// A single page table with fixed page size.
#[derive(Debug, Clone)]
pub struct PageTable {
    page: PageSize,
    entries: RadixTable<Pte>,
    resident: [Pages; 2], // pages per node
}

impl PageTable {
    /// Creates an empty table with the given page size (must be a power of
    /// two).
    pub fn new(page_size: u64) -> Self {
        Self {
            page: PageSize::new(page_size),
            entries: RadixTable::new(),
            resident: [Pages::ZERO, Pages::ZERO],
        }
    }

    /// The table's page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page.get()
    }

    /// The table's page size as a typed unit.
    pub fn page(&self) -> PageSize {
        self.page
    }

    /// Virtual page number containing `vaddr`.
    pub fn vpn(&self, vaddr: u64) -> Vpn {
        Vpn::new(vaddr / self.page.get())
    }

    /// Inclusive-exclusive VPN range covering `[vaddr, vaddr + len)`.
    pub fn vpn_range(&self, vaddr: u64, len: u64) -> VpnRange {
        if len == 0 {
            return VpnRange::empty(self.vpn(vaddr));
        }
        VpnRange::new(
            self.vpn(vaddr),
            Vpn::new((vaddr + len - 1) / self.page.get() + 1),
        )
    }

    /// Looks up the entry for `vpn`.
    pub fn translate(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(vpn.get())
    }

    /// Whether `vpn` has a populated entry.
    pub fn is_populated(&self, vpn: Vpn) -> bool {
        self.entries.get(vpn.get()).is_some()
    }

    /// Installs a fresh entry mapping `vpn` to a frame on `node`.
    ///
    /// Panics if the page is already populated — the OS/driver must unmap
    /// first; double population is always a simulator bug.
    pub fn populate(&mut self, vpn: Vpn, node: Node, frame: u64) {
        let old = self.entries.insert(
            vpn.get(),
            Pte {
                node,
                frame,
                dirty: false,
            },
        );
        assert!(old.is_none(), "double population of {vpn}");
        self.resident[node_idx(node)] += Pages::new(1);
    }

    /// Removes the entry for `vpn`, returning it.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let pte = self.entries.remove(vpn.get());
        if let Some(p) = pte {
            self.resident[node_idx(p.node)] -= Pages::new(1);
        }
        pte
    }

    /// Rewrites the entry for `vpn` to point at `node`/`frame` (migration).
    /// Returns the old entry. Panics if the page was not populated.
    pub fn remap(&mut self, vpn: Vpn, node: Node, frame: u64) -> Pte {
        let e = self
            .entries
            .get_mut(vpn.get())
            .unwrap_or_else(|| panic!("remap of unpopulated {vpn}")); // gh-audit: allow(no-unwrap-in-lib) -- remap of an unpopulated page is a simulator logic error
        let old = *e;
        self.resident[node_idx(old.node)] -= Pages::new(1);
        self.resident[node_idx(node)] += Pages::new(1);
        e.node = node;
        e.frame = frame;
        e.dirty = false;
        old
    }

    /// Marks `vpn` dirty (a write hit the page). No-op if unpopulated.
    pub fn mark_dirty(&mut self, vpn: Vpn) {
        if let Some(e) = self.entries.get_mut(vpn.get()) {
            e.dirty = true;
        }
    }

    /// Number of populated pages resident on `node`.
    pub fn resident_pages(&self, node: Node) -> Pages {
        self.resident[node_idx(node)]
    }

    /// Bytes resident on `node` (pages × page size).
    pub fn resident_bytes(&self, node: Node) -> Bytes {
        self.resident_pages(node) * self.page
    }

    /// Total populated pages.
    pub fn populated_pages(&self) -> Pages {
        Pages::new(widen(self.entries.len()))
    }

    /// Counts populated pages in `vpns` residing on `node`.
    pub fn count_resident_in(&self, vpns: VpnRange, node: Node) -> Pages {
        Pages::new(widen(
            self.entries
                .range(vpns.start.get(), vpns.end.get())
                .filter(|(_, pte)| pte.node == node)
                .count(),
        ))
    }

    /// Collects the VPNs in range that are populated on `node`.
    pub fn vpns_on_node(&self, vpns: VpnRange, node: Node) -> Vec<Vpn> {
        self.entries
            .range(vpns.start.get(), vpns.end.get())
            .filter(|(_, pte)| pte.node == node)
            .map(|(k, _)| Vpn::new(k))
            .collect()
    }

    /// Unmaps every populated page in the VPN range, returning the removed
    /// entries (for frame release).
    pub fn unmap_range(&mut self, vpns: VpnRange) -> Vec<(Vpn, Pte)> {
        let keys: Vec<Vpn> = self
            .entries
            .range(vpns.start.get(), vpns.end.get())
            .map(|(k, _)| Vpn::new(k))
            .collect();
        keys.into_iter()
            .map(|k| {
                let pte = self.unmap(k).expect("key was just observed"); // gh-audit: allow(no-unwrap-in-lib) -- key was observed under the same borrow
                (k, pte)
            })
            .collect()
    }
}

fn node_idx(n: Node) -> usize {
    match n {
        Node::Cpu => 0,
        Node::Gpu => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KIB;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    fn r(lo: u64, hi: u64) -> VpnRange {
        VpnRange::new(v(lo), v(hi))
    }

    fn table() -> PageTable {
        PageTable::new(4 * KIB)
    }

    #[test]
    fn vpn_math() {
        let t = table();
        assert_eq!(t.vpn(0), v(0));
        assert_eq!(t.vpn(4095), v(0));
        assert_eq!(t.vpn(4096), v(1));
        assert_eq!(t.vpn_range(0, 4096), r(0, 1));
        assert_eq!(t.vpn_range(0, 4097), r(0, 2));
        assert_eq!(t.vpn_range(100, 0), r(0, 0));
        assert_eq!(t.vpn_range(4000, 200), r(0, 2));
    }

    #[test]
    fn populate_translate_unmap() {
        let mut t = table();
        t.populate(v(5), Node::Gpu, 77);
        let pte = t.translate(v(5)).unwrap();
        assert_eq!(pte.node, Node::Gpu);
        assert_eq!(pte.frame, 77);
        assert!(!pte.dirty);
        let removed = t.unmap(v(5)).unwrap();
        assert_eq!(removed.frame, 77);
        assert!(t.translate(v(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "double population")]
    fn double_populate_panics() {
        let mut t = table();
        t.populate(v(1), Node::Cpu, 1);
        t.populate(v(1), Node::Cpu, 2);
    }

    #[test]
    fn residency_accounting() {
        let mut t = table();
        t.populate(v(0), Node::Cpu, 1);
        t.populate(v(1), Node::Cpu, 2);
        t.populate(v(2), Node::Gpu, 3);
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(2));
        assert_eq!(t.resident_pages(Node::Gpu), Pages::new(1));
        assert_eq!(t.resident_bytes(Node::Cpu), Bytes::new(8 * KIB));
        t.unmap(v(0));
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(1));
    }

    #[test]
    fn remap_moves_residency() {
        let mut t = table();
        t.populate(v(9), Node::Cpu, 10);
        t.mark_dirty(v(9));
        let old = t.remap(v(9), Node::Gpu, 42);
        assert_eq!(old.node, Node::Cpu);
        assert!(old.dirty);
        let new = t.translate(v(9)).unwrap();
        assert_eq!(new.node, Node::Gpu);
        assert_eq!(new.frame, 42);
        assert!(!new.dirty, "remap resets dirty");
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(0));
        assert_eq!(t.resident_pages(Node::Gpu), Pages::new(1));
    }

    #[test]
    #[should_panic(expected = "unpopulated")]
    fn remap_unpopulated_panics() {
        let mut t = table();
        t.remap(v(1), Node::Gpu, 1);
    }

    #[test]
    fn count_and_collect_by_node() {
        let mut t = table();
        for n in 0..10 {
            t.populate(v(n), if n % 2 == 0 { Node::Cpu } else { Node::Gpu }, n);
        }
        assert_eq!(t.count_resident_in(r(0, 10), Node::Cpu), Pages::new(5));
        assert_eq!(
            t.vpns_on_node(r(0, 10), Node::Gpu),
            vec![v(1), v(3), v(5), v(7), v(9)]
        );
        assert_eq!(t.count_resident_in(r(3, 5), Node::Gpu), Pages::new(1));
    }

    #[test]
    fn unmap_range_returns_entries() {
        let mut t = table();
        for n in 0..8 {
            t.populate(v(n), Node::Cpu, 100 + n);
        }
        let removed = t.unmap_range(r(2, 6));
        assert_eq!(removed.len(), 4);
        assert_eq!(t.populated_pages(), Pages::new(4));
        assert!(t.translate(v(3)).is_none());
        assert!(t.translate(v(6)).is_some());
    }

    #[test]
    fn mark_dirty_is_noop_on_unpopulated() {
        let mut t = table();
        t.mark_dirty(v(123)); // must not panic
        assert!(t.translate(v(123)).is_none());
    }
}
