//! Page tables.
//!
//! Two instances of [`PageTable`] model the GH200's two tables:
//!
//! * the **system-wide page table** (CPU-resident, managed by the OS,
//!   walked by the SMMU for both CPU accesses and GPU ATS requests), with
//!   the system page size (4 KiB or 64 KiB on Grace); its pages may be
//!   physically located on either node;
//! * the **GPU-exclusive page table** (GPU-resident, only visible to the
//!   GMMU), with 2 MiB pages, holding `cudaMalloc` allocations and managed
//!   pages whose current physical location is GPU memory.
//!
//! Entries are keyed by virtual page number (`vaddr / page_size`).

use crate::phys::Node;
use crate::radix::RadixTable;

/// A page table entry: where the page physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// NUMA node holding the frame.
    pub node: Node,
    /// Opaque frame id from [`crate::phys::PhysMem`].
    pub frame: u64,
    /// Set when the page has been written since population (used to decide
    /// whether eviction must copy data back).
    pub dirty: bool,
}

/// A single page table with fixed page size.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    entries: RadixTable<Pte>,
    resident: [u64; 2], // pages per node
}

impl PageTable {
    /// Creates an empty table with the given page size (must be a power of
    /// two).
    pub fn new(page_size: u64) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be 2^k");
        Self {
            page_size,
            entries: RadixTable::new(),
            resident: [0, 0],
        }
    }

    /// The table's page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Virtual page number containing `vaddr`.
    pub fn vpn(&self, vaddr: u64) -> u64 {
        vaddr / self.page_size
    }

    /// Inclusive-exclusive VPN range covering `[vaddr, vaddr + len)`.
    pub fn vpn_range(&self, vaddr: u64, len: u64) -> std::ops::Range<u64> {
        if len == 0 {
            let v = self.vpn(vaddr);
            return v..v;
        }
        self.vpn(vaddr)..(vaddr + len - 1) / self.page_size + 1
    }

    /// Looks up the entry for `vpn`.
    pub fn translate(&self, vpn: u64) -> Option<&Pte> {
        self.entries.get(vpn)
    }

    /// Whether `vpn` has a populated entry.
    pub fn is_populated(&self, vpn: u64) -> bool {
        self.entries.get(vpn).is_some()
    }

    /// Installs a fresh entry mapping `vpn` to a frame on `node`.
    ///
    /// Panics if the page is already populated — the OS/driver must unmap
    /// first; double population is always a simulator bug.
    pub fn populate(&mut self, vpn: u64, node: Node, frame: u64) {
        let old = self.entries.insert(
            vpn,
            Pte {
                node,
                frame,
                dirty: false,
            },
        );
        assert!(old.is_none(), "double population of vpn {vpn}");
        self.resident[node_idx(node)] += 1;
    }

    /// Removes the entry for `vpn`, returning it.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        let pte = self.entries.remove(vpn);
        if let Some(p) = pte {
            self.resident[node_idx(p.node)] -= 1;
        }
        pte
    }

    /// Rewrites the entry for `vpn` to point at `node`/`frame` (migration).
    /// Returns the old entry. Panics if the page was not populated.
    pub fn remap(&mut self, vpn: u64, node: Node, frame: u64) -> Pte {
        let e = self
            .entries
            .get_mut(vpn)
            .unwrap_or_else(|| panic!("remap of unpopulated vpn {vpn}")); // gh-audit: allow(no-unwrap-in-lib) -- remap of an unpopulated page is a simulator logic error
        let old = *e;
        self.resident[node_idx(old.node)] -= 1;
        self.resident[node_idx(node)] += 1;
        e.node = node;
        e.frame = frame;
        e.dirty = false;
        old
    }

    /// Marks `vpn` dirty (a write hit the page). No-op if unpopulated.
    pub fn mark_dirty(&mut self, vpn: u64) {
        if let Some(e) = self.entries.get_mut(vpn) {
            e.dirty = true;
        }
    }

    /// Number of populated pages resident on `node`.
    pub fn resident_pages(&self, node: Node) -> u64 {
        self.resident[node_idx(node)]
    }

    /// Bytes resident on `node` (pages × page size).
    pub fn resident_bytes(&self, node: Node) -> u64 {
        self.resident_pages(node) * self.page_size
    }

    /// Total populated pages.
    pub fn populated_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Counts populated pages in `vpns` residing on `node`.
    pub fn count_resident_in(&self, vpns: std::ops::Range<u64>, node: Node) -> u64 {
        self.entries
            .range(vpns.start, vpns.end)
            .filter(|(_, pte)| pte.node == node)
            .count() as u64
    }

    /// Collects the VPNs in range that are populated on `node`.
    pub fn vpns_on_node(&self, vpns: std::ops::Range<u64>, node: Node) -> Vec<u64> {
        self.entries
            .range(vpns.start, vpns.end)
            .filter(|(_, pte)| pte.node == node)
            .map(|(k, _)| k)
            .collect()
    }

    /// Unmaps every populated page in the VPN range, returning the removed
    /// entries (for frame release).
    pub fn unmap_range(&mut self, vpns: std::ops::Range<u64>) -> Vec<(u64, Pte)> {
        let keys: Vec<u64> = self
            .entries
            .range(vpns.start, vpns.end)
            .map(|(k, _)| k)
            .collect();
        keys.into_iter()
            .map(|k| {
                let pte = self.unmap(k).expect("key was just observed"); // gh-audit: allow(no-unwrap-in-lib) -- key was observed under the same borrow
                (k, pte)
            })
            .collect()
    }
}

fn node_idx(n: Node) -> usize {
    match n {
        Node::Cpu => 0,
        Node::Gpu => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KIB;

    fn table() -> PageTable {
        PageTable::new(4 * KIB)
    }

    #[test]
    fn vpn_math() {
        let t = table();
        assert_eq!(t.vpn(0), 0);
        assert_eq!(t.vpn(4095), 0);
        assert_eq!(t.vpn(4096), 1);
        assert_eq!(t.vpn_range(0, 4096), 0..1);
        assert_eq!(t.vpn_range(0, 4097), 0..2);
        assert_eq!(t.vpn_range(100, 0), 0..0);
        assert_eq!(t.vpn_range(4000, 200), 0..2);
    }

    #[test]
    fn populate_translate_unmap() {
        let mut t = table();
        t.populate(5, Node::Gpu, 77);
        let pte = t.translate(5).unwrap();
        assert_eq!(pte.node, Node::Gpu);
        assert_eq!(pte.frame, 77);
        assert!(!pte.dirty);
        let removed = t.unmap(5).unwrap();
        assert_eq!(removed.frame, 77);
        assert!(t.translate(5).is_none());
    }

    #[test]
    #[should_panic(expected = "double population")]
    fn double_populate_panics() {
        let mut t = table();
        t.populate(1, Node::Cpu, 1);
        t.populate(1, Node::Cpu, 2);
    }

    #[test]
    fn residency_accounting() {
        let mut t = table();
        t.populate(0, Node::Cpu, 1);
        t.populate(1, Node::Cpu, 2);
        t.populate(2, Node::Gpu, 3);
        assert_eq!(t.resident_pages(Node::Cpu), 2);
        assert_eq!(t.resident_pages(Node::Gpu), 1);
        assert_eq!(t.resident_bytes(Node::Cpu), 8 * KIB);
        t.unmap(0);
        assert_eq!(t.resident_pages(Node::Cpu), 1);
    }

    #[test]
    fn remap_moves_residency() {
        let mut t = table();
        t.populate(9, Node::Cpu, 10);
        t.mark_dirty(9);
        let old = t.remap(9, Node::Gpu, 42);
        assert_eq!(old.node, Node::Cpu);
        assert!(old.dirty);
        let new = t.translate(9).unwrap();
        assert_eq!(new.node, Node::Gpu);
        assert_eq!(new.frame, 42);
        assert!(!new.dirty, "remap resets dirty");
        assert_eq!(t.resident_pages(Node::Cpu), 0);
        assert_eq!(t.resident_pages(Node::Gpu), 1);
    }

    #[test]
    #[should_panic(expected = "unpopulated")]
    fn remap_unpopulated_panics() {
        let mut t = table();
        t.remap(1, Node::Gpu, 1);
    }

    #[test]
    fn count_and_collect_by_node() {
        let mut t = table();
        for v in 0..10 {
            t.populate(v, if v % 2 == 0 { Node::Cpu } else { Node::Gpu }, v);
        }
        assert_eq!(t.count_resident_in(0..10, Node::Cpu), 5);
        assert_eq!(t.vpns_on_node(0..10, Node::Gpu), vec![1, 3, 5, 7, 9]);
        assert_eq!(t.count_resident_in(3..5, Node::Gpu), 1);
    }

    #[test]
    fn unmap_range_returns_entries() {
        let mut t = table();
        for v in 0..8 {
            t.populate(v, Node::Cpu, 100 + v);
        }
        let removed = t.unmap_range(2..6);
        assert_eq!(removed.len(), 4);
        assert_eq!(t.populated_pages(), 4);
        assert!(t.translate(3).is_none());
        assert!(t.translate(6).is_some());
    }

    #[test]
    fn mark_dirty_is_noop_on_unpopulated() {
        let mut t = table();
        t.mark_dirty(123); // must not panic
        assert!(t.translate(123).is_none());
    }
}
