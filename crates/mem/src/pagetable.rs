//! Page tables.
//!
//! Two instances of [`PageTable`] model the GH200's two tables:
//!
//! * the **system-wide page table** (CPU-resident, managed by the OS,
//!   walked by the SMMU for both CPU accesses and GPU ATS requests), with
//!   the system page size (4 KiB or 64 KiB on Grace); its pages may be
//!   physically located on either node;
//! * the **GPU-exclusive page table** (GPU-resident, only visible to the
//!   GMMU), with 2 MiB pages, holding `cudaMalloc` allocations and managed
//!   pages whose current physical location is GPU memory.
//!
//! Entries are keyed by virtual page number (`vaddr / page_size`).

use crate::phys::Node;
use crate::radix::{self, RadixTable};
use gh_units::{widen, Bytes, PageSize, Pages, Vpn, VpnRange};

/// One maximal run of pages sharing a placement state: `Some(node)` when
/// every page is populated and resident on `node`, `None` when every page
/// is unpopulated.
pub type PlacementRun = (VpnRange, Option<Node>);

/// A page table entry: where the page physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// NUMA node holding the frame.
    pub node: Node,
    /// Opaque frame id from [`crate::phys::PhysMem`].
    pub frame: u64,
    /// Set when the page has been written since population (used to decide
    /// whether eviction must copy data back).
    pub dirty: bool,
}

/// A single page table with fixed page size.
#[derive(Debug, Clone)]
pub struct PageTable {
    page: PageSize,
    entries: RadixTable<Pte>,
    resident: [Pages; 2], // pages per node
    /// Per-leaf populated-page counts per node, keyed by radix leaf index.
    /// Lets range queries answer a uniform fully-resident leaf in O(1)
    /// without touching the 512 slots. Keyed access only — never iterated.
    summary: std::collections::HashMap<u64, [u32; 2]>,
    /// Bumped on every placement change (populate/unmap/remap — not
    /// `mark_dirty`, which doesn't move pages). Callers cache
    /// classification results keyed on this.
    epoch: u64,
}

impl PageTable {
    /// Creates an empty table with the given page size (must be a power of
    /// two).
    pub fn new(page_size: u64) -> Self {
        Self {
            page: PageSize::new(page_size),
            entries: RadixTable::new(),
            resident: [Pages::ZERO, Pages::ZERO],
            summary: std::collections::HashMap::new(),
            epoch: 0,
        }
    }

    /// Monotonic placement version: changes iff some page was populated,
    /// unmapped, or remapped since the last observation.
    pub fn placement_epoch(&self) -> u64 {
        self.epoch
    }

    /// The table's page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page.get()
    }

    /// The table's page size as a typed unit.
    pub fn page(&self) -> PageSize {
        self.page
    }

    /// Virtual page number containing `vaddr`.
    pub fn vpn(&self, vaddr: u64) -> Vpn {
        Vpn::new(vaddr / self.page.get())
    }

    /// Inclusive-exclusive VPN range covering `[vaddr, vaddr + len)`.
    pub fn vpn_range(&self, vaddr: u64, len: u64) -> VpnRange {
        if len == 0 {
            return VpnRange::empty(self.vpn(vaddr));
        }
        VpnRange::new(
            self.vpn(vaddr),
            Vpn::new((vaddr + len - 1) / self.page.get() + 1),
        )
    }

    /// Looks up the entry for `vpn`.
    pub fn translate(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(vpn.get())
    }

    /// Whether `vpn` has a populated entry.
    pub fn is_populated(&self, vpn: Vpn) -> bool {
        self.entries.get(vpn.get()).is_some()
    }

    /// Installs a fresh entry mapping `vpn` to a frame on `node`.
    ///
    /// Panics if the page is already populated — the OS/driver must unmap
    /// first; double population is always a simulator bug.
    pub fn populate(&mut self, vpn: Vpn, node: Node, frame: u64) {
        let old = self.entries.insert(
            vpn.get(),
            Pte {
                node,
                frame,
                dirty: false,
            },
        );
        assert!(old.is_none(), "double population of {vpn}");
        self.resident[node_idx(node)] += Pages::new(1);
        let c = self
            .summary
            .entry(radix::leaf_index(vpn.get()))
            .or_insert([0u32; 2]);
        c[node_idx(node)] = c[node_idx(node)].saturating_add(1);
        self.epoch = self.epoch.saturating_add(1);
    }

    /// Removes the entry for `vpn`, returning it.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let pte = self.entries.remove(vpn.get());
        if let Some(p) = pte {
            self.resident[node_idx(p.node)] -= Pages::new(1);
            let idx = radix::leaf_index(vpn.get());
            if let Some(c) = self.summary.get_mut(&idx) {
                c[node_idx(p.node)] = c[node_idx(p.node)].saturating_sub(1);
                if c[0] == 0 && c[1] == 0 {
                    self.summary.remove(&idx);
                }
            }
            self.epoch = self.epoch.saturating_add(1);
        }
        pte
    }

    /// Rewrites the entry for `vpn` to point at `node`/`frame` (migration).
    /// Returns the old entry. Panics if the page was not populated.
    pub fn remap(&mut self, vpn: Vpn, node: Node, frame: u64) -> Pte {
        let e = self
            .entries
            .get_mut(vpn.get())
            .unwrap_or_else(|| panic!("remap of unpopulated {vpn}")); // gh-audit: allow(no-unwrap-in-lib) -- remap of an unpopulated page is a simulator logic error
        let old = *e;
        self.resident[node_idx(old.node)] -= Pages::new(1);
        self.resident[node_idx(node)] += Pages::new(1);
        e.node = node;
        e.frame = frame;
        e.dirty = false;
        if let Some(c) = self.summary.get_mut(&radix::leaf_index(vpn.get())) {
            c[node_idx(old.node)] = c[node_idx(old.node)].saturating_sub(1);
            c[node_idx(node)] = c[node_idx(node)].saturating_add(1);
        }
        self.epoch = self.epoch.saturating_add(1);
        old
    }

    /// Marks `vpn` dirty (a write hit the page). No-op if unpopulated.
    pub fn mark_dirty(&mut self, vpn: Vpn) {
        if let Some(e) = self.entries.get_mut(vpn.get()) {
            e.dirty = true;
        }
    }

    /// Number of populated pages resident on `node`.
    pub fn resident_pages(&self, node: Node) -> Pages {
        self.resident[node_idx(node)]
    }

    /// Bytes resident on `node` (pages × page size).
    pub fn resident_bytes(&self, node: Node) -> Bytes {
        self.resident_pages(node) * self.page
    }

    /// Total populated pages.
    pub fn populated_pages(&self) -> Pages {
        Pages::new(widen(self.entries.len()))
    }

    /// Counts populated pages in `vpns` residing on `node`.
    ///
    /// Leaves fully covered by the range are answered from the per-leaf
    /// summary in O(1); only boundary leaves are scanned.
    pub fn count_resident_in(&self, vpns: VpnRange, node: Node) -> Pages {
        let (lo, hi) = (vpns.start.get(), vpns.end.get());
        let mut total: u64 = 0;
        let mut k = lo;
        while k < hi {
            let idx = radix::leaf_index(k);
            let base = idx << radix::LEAF_BITS;
            let end = hi.min(base + widen(radix::LEAF_LEN));
            if let Some(c) = self.summary.get(&idx) {
                if k == base && end == base + widen(radix::LEAF_LEN) {
                    total = total.saturating_add(u64::from(c[node_idx(node)]));
                } else if let Some(leaf) = self.entries.leaf(idx) {
                    for i in (k - base)..(end - base) {
                        if leaf[i as usize].is_some_and(|pte| pte.node == node) {
                            total = total.saturating_add(1);
                        }
                    }
                }
            }
            k = end;
        }
        Pages::new(total)
    }

    /// If every page in `vpns` is populated and resident on one node,
    /// returns that node. Mixed, partially populated, and empty ranges
    /// return `None`. Uniform fully-covered leaves are answered from the
    /// summary without touching their slots.
    pub fn translate_range(&self, vpns: VpnRange) -> Option<Node> {
        let (lo, hi) = (vpns.start.get(), vpns.end.get());
        if lo >= hi {
            return None;
        }
        let mut uniform: Option<Node> = None;
        let mut k = lo;
        while k < hi {
            let idx = radix::leaf_index(k);
            let base = idx << radix::LEAF_BITS;
            let end = hi.min(base + widen(radix::LEAF_LEN));
            let c = self.summary.get(&idx)?;
            let full = k == base && end == base + widen(radix::LEAF_LEN);
            let leaf_node = if full && u64::from(c[node_idx(Node::Cpu)]) == widen(radix::LEAF_LEN) {
                Node::Cpu
            } else if full && u64::from(c[node_idx(Node::Gpu)]) == widen(radix::LEAF_LEN) {
                Node::Gpu
            } else {
                let leaf = self.entries.leaf(idx)?;
                let mut node: Option<Node> = None;
                for i in (k - base)..(end - base) {
                    match (leaf[i as usize], node) {
                        (None, _) => return None,
                        (Some(pte), None) => node = Some(pte.node),
                        (Some(pte), Some(n)) if pte.node != n => return None,
                        _ => {}
                    }
                }
                node?
            };
            match uniform {
                None => uniform = Some(leaf_node),
                Some(n) if n != leaf_node => return None,
                _ => {}
            }
            k = end;
        }
        uniform
    }

    /// Classifies `vpns` into maximal [`PlacementRun`]s in ascending
    /// address order: `Some(node)` runs are populated-and-resident on that
    /// node, `None` runs are unpopulated. Uniform fully-covered leaves are
    /// classified from the summary in O(1); mixed leaves are scanned once.
    pub fn classify_runs(&self, vpns: VpnRange) -> Vec<PlacementRun> {
        let (lo, hi) = (vpns.start.get(), vpns.end.get());
        let mut runs: Vec<PlacementRun> = Vec::new();
        fn push(runs: &mut Vec<PlacementRun>, start: u64, end: u64, state: Option<Node>) {
            if let Some((vr, s)) = runs.last_mut() {
                if *s == state && vr.end.get() == start {
                    vr.end = Vpn::new(end);
                    return;
                }
            }
            runs.push((VpnRange::new(Vpn::new(start), Vpn::new(end)), state));
        }
        let mut k = lo;
        while k < hi {
            let idx = radix::leaf_index(k);
            let base = idx << radix::LEAF_BITS;
            let end = hi.min(base + widen(radix::LEAF_LEN));
            let full = k == base && end == base + widen(radix::LEAF_LEN);
            match self.summary.get(&idx) {
                None => push(&mut runs, k, end, None),
                Some(c) if full && u64::from(c[node_idx(Node::Cpu)]) == widen(radix::LEAF_LEN) => {
                    push(&mut runs, k, end, Some(Node::Cpu));
                }
                Some(c) if full && u64::from(c[node_idx(Node::Gpu)]) == widen(radix::LEAF_LEN) => {
                    push(&mut runs, k, end, Some(Node::Gpu));
                }
                Some(_) => {
                    let leaf = self.entries.leaf(idx);
                    for key in k..end {
                        let state = leaf.and_then(|l| l[(key - base) as usize].map(|pte| pte.node));
                        push(&mut runs, key, key + 1, state);
                    }
                }
            }
            k = end;
        }
        runs
    }

    /// Marks every populated page in `vpns` dirty (batched
    /// [`PageTable::mark_dirty`]).
    pub fn mark_dirty_range(&mut self, vpns: VpnRange) {
        self.entries
            .for_each_in_range_mut(vpns.start.get(), vpns.end.get(), |_, e| e.dirty = true);
    }

    /// Collects the VPNs in range that are populated on `node`.
    pub fn vpns_on_node(&self, vpns: VpnRange, node: Node) -> Vec<Vpn> {
        self.entries
            .range(vpns.start.get(), vpns.end.get())
            .filter(|(_, pte)| pte.node == node)
            .map(|(k, _)| Vpn::new(k))
            .collect()
    }

    /// Unmaps every populated page in the VPN range, returning the removed
    /// entries (for frame release).
    pub fn unmap_range(&mut self, vpns: VpnRange) -> Vec<(Vpn, Pte)> {
        let keys: Vec<Vpn> = self
            .entries
            .range(vpns.start.get(), vpns.end.get())
            .map(|(k, _)| Vpn::new(k))
            .collect();
        keys.into_iter()
            .map(|k| {
                let pte = self.unmap(k).expect("key was just observed"); // gh-audit: allow(no-unwrap-in-lib) -- key was observed under the same borrow
                (k, pte)
            })
            .collect()
    }
}

fn node_idx(n: Node) -> usize {
    match n {
        Node::Cpu => 0,
        Node::Gpu => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::KIB;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    fn r(lo: u64, hi: u64) -> VpnRange {
        VpnRange::new(v(lo), v(hi))
    }

    fn table() -> PageTable {
        PageTable::new(4 * KIB)
    }

    #[test]
    fn vpn_math() {
        let t = table();
        assert_eq!(t.vpn(0), v(0));
        assert_eq!(t.vpn(4095), v(0));
        assert_eq!(t.vpn(4096), v(1));
        assert_eq!(t.vpn_range(0, 4096), r(0, 1));
        assert_eq!(t.vpn_range(0, 4097), r(0, 2));
        assert_eq!(t.vpn_range(100, 0), r(0, 0));
        assert_eq!(t.vpn_range(4000, 200), r(0, 2));
    }

    #[test]
    fn populate_translate_unmap() {
        let mut t = table();
        t.populate(v(5), Node::Gpu, 77);
        let pte = t.translate(v(5)).unwrap();
        assert_eq!(pte.node, Node::Gpu);
        assert_eq!(pte.frame, 77);
        assert!(!pte.dirty);
        let removed = t.unmap(v(5)).unwrap();
        assert_eq!(removed.frame, 77);
        assert!(t.translate(v(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "double population")]
    fn double_populate_panics() {
        let mut t = table();
        t.populate(v(1), Node::Cpu, 1);
        t.populate(v(1), Node::Cpu, 2);
    }

    #[test]
    fn residency_accounting() {
        let mut t = table();
        t.populate(v(0), Node::Cpu, 1);
        t.populate(v(1), Node::Cpu, 2);
        t.populate(v(2), Node::Gpu, 3);
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(2));
        assert_eq!(t.resident_pages(Node::Gpu), Pages::new(1));
        assert_eq!(t.resident_bytes(Node::Cpu), Bytes::new(8 * KIB));
        t.unmap(v(0));
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(1));
    }

    #[test]
    fn remap_moves_residency() {
        let mut t = table();
        t.populate(v(9), Node::Cpu, 10);
        t.mark_dirty(v(9));
        let old = t.remap(v(9), Node::Gpu, 42);
        assert_eq!(old.node, Node::Cpu);
        assert!(old.dirty);
        let new = t.translate(v(9)).unwrap();
        assert_eq!(new.node, Node::Gpu);
        assert_eq!(new.frame, 42);
        assert!(!new.dirty, "remap resets dirty");
        assert_eq!(t.resident_pages(Node::Cpu), Pages::new(0));
        assert_eq!(t.resident_pages(Node::Gpu), Pages::new(1));
    }

    #[test]
    #[should_panic(expected = "unpopulated")]
    fn remap_unpopulated_panics() {
        let mut t = table();
        t.remap(v(1), Node::Gpu, 1);
    }

    #[test]
    fn count_and_collect_by_node() {
        let mut t = table();
        for n in 0..10 {
            t.populate(v(n), if n % 2 == 0 { Node::Cpu } else { Node::Gpu }, n);
        }
        assert_eq!(t.count_resident_in(r(0, 10), Node::Cpu), Pages::new(5));
        assert_eq!(
            t.vpns_on_node(r(0, 10), Node::Gpu),
            vec![v(1), v(3), v(5), v(7), v(9)]
        );
        assert_eq!(t.count_resident_in(r(3, 5), Node::Gpu), Pages::new(1));
    }

    #[test]
    fn unmap_range_returns_entries() {
        let mut t = table();
        for n in 0..8 {
            t.populate(v(n), Node::Cpu, 100 + n);
        }
        let removed = t.unmap_range(r(2, 6));
        assert_eq!(removed.len(), 4);
        assert_eq!(t.populated_pages(), Pages::new(4));
        assert!(t.translate(v(3)).is_none());
        assert!(t.translate(v(6)).is_some());
    }

    #[test]
    fn classify_runs_splits_by_state() {
        let mut t = table();
        // [0,3) on CPU, [3,5) unpopulated, [5,8) on GPU.
        for n in 0..3 {
            t.populate(v(n), Node::Cpu, n);
        }
        for n in 5..8 {
            t.populate(v(n), Node::Gpu, n);
        }
        assert_eq!(
            t.classify_runs(r(0, 8)),
            vec![
                (r(0, 3), Some(Node::Cpu)),
                (r(3, 5), None),
                (r(5, 8), Some(Node::Gpu)),
            ]
        );
        assert_eq!(t.classify_runs(r(1, 2)), vec![(r(1, 2), Some(Node::Cpu))]);
        assert!(t.classify_runs(r(4, 4)).is_empty());
    }

    #[test]
    fn classify_runs_merges_across_leaf_boundaries() {
        let mut t = table();
        // Leaf 0 fully CPU-resident, plus the first pages of leaf 1: one
        // maximal run even though the fast full-leaf path answered leaf 0.
        for n in 0..520 {
            t.populate(v(n), Node::Cpu, n);
        }
        assert_eq!(
            t.classify_runs(r(0, 600)),
            vec![(r(0, 520), Some(Node::Cpu)), (r(520, 600), None),]
        );
        assert_eq!(t.count_resident_in(r(0, 600), Node::Cpu), Pages::new(520));
        assert_eq!(t.count_resident_in(r(100, 514), Node::Cpu), Pages::new(414));
    }

    #[test]
    fn leaf_boundary_511_vs_512_resident() {
        // The range walkers answer fully-covered, fully-resident leaves
        // from the per-leaf summary in O(1) and fall back to slot scans
        // otherwise. 511 vs 512 resident entries in one leaf is exactly
        // the edge between those two paths: a one-page hole must be
        // reported by the scan, and plugging it must flip the leaf onto
        // the summary fast path with identical semantics.
        let mut t = table();
        for n in 0..512 {
            if n != 511 {
                t.populate(v(n), Node::Cpu, n);
            }
        }
        // 511 resident: the final page is a hole.
        assert_eq!(t.count_resident_in(r(0, 512), Node::Cpu), Pages::new(511));
        assert_eq!(t.translate_range(r(0, 512)), None, "hole breaks uniformity");
        assert_eq!(t.translate_range(r(0, 511)), Some(Node::Cpu));
        assert_eq!(
            t.classify_runs(r(0, 512)),
            vec![(r(0, 511), Some(Node::Cpu)), (r(511, 512), None)]
        );
        // Plug the hole: 512 resident, summary fast path takes over.
        t.populate(v(511), Node::Cpu, 511);
        assert_eq!(t.count_resident_in(r(0, 512), Node::Cpu), Pages::new(512));
        assert_eq!(t.translate_range(r(0, 512)), Some(Node::Cpu));
        assert_eq!(
            t.classify_runs(r(0, 512)),
            vec![(r(0, 512), Some(Node::Cpu))]
        );
        // Unmap one page again: back off the fast path, and the hole's
        // position (first page this time) is reported exactly.
        t.unmap(v(0));
        assert_eq!(t.count_resident_in(r(0, 512), Node::Cpu), Pages::new(511));
        assert_eq!(
            t.classify_runs(r(0, 512)),
            vec![(r(0, 1), None), (r(1, 512), Some(Node::Cpu))]
        );
    }

    #[test]
    fn translate_range_detects_uniform_placement() {
        let mut t = table();
        for n in 0..514 {
            t.populate(v(n), Node::Gpu, n);
        }
        assert_eq!(t.translate_range(r(0, 514)), Some(Node::Gpu));
        assert_eq!(t.translate_range(r(100, 200)), Some(Node::Gpu));
        assert_eq!(t.translate_range(r(0, 515)), None, "tail unpopulated");
        assert_eq!(t.translate_range(r(0, 0)), None, "empty range");
        t.remap(v(7), Node::Cpu, 999);
        assert_eq!(t.translate_range(r(0, 514)), None, "mixed placement");
    }

    #[test]
    fn placement_epoch_tracks_placement_not_dirtiness() {
        let mut t = table();
        let e0 = t.placement_epoch();
        t.populate(v(1), Node::Cpu, 1);
        let e1 = t.placement_epoch();
        assert_ne!(e0, e1);
        t.mark_dirty(v(1));
        t.mark_dirty_range(r(0, 10));
        assert_eq!(t.placement_epoch(), e1, "dirty bits are not placement");
        t.remap(v(1), Node::Gpu, 2);
        let e2 = t.placement_epoch();
        assert_ne!(e1, e2);
        t.unmap(v(1));
        assert_ne!(t.placement_epoch(), e2);
    }

    #[test]
    fn mark_dirty_range_sets_populated_only() {
        let mut t = table();
        t.populate(v(2), Node::Cpu, 1);
        t.populate(v(4), Node::Gpu, 2);
        t.mark_dirty_range(r(0, 4));
        assert!(t.translate(v(2)).unwrap().dirty);
        assert!(!t.translate(v(4)).unwrap().dirty);
    }

    #[test]
    fn mark_dirty_is_noop_on_unpopulated() {
        let mut t = table();
        t.mark_dirty(v(123)); // must not panic
        assert!(t.translate(v(123)).is_none());
    }
}
