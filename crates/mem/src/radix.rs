//! A sparse two-level radix map keyed by page number.
//!
//! Real page tables are radix trees; we model the same shape with a sparse
//! directory of fixed 512-entry leaves. Compared to a flat `HashMap`, this
//! keeps densely populated ranges (the common case for large allocations)
//! cache-friendly and iteration over a VPN range cheap, which matters
//! because the simulator translates millions of pages per experiment.

/// Number of low key bits covered by one leaf.
pub const LEAF_BITS: u32 = 9;
/// Slots per leaf (`1 << LEAF_BITS`).
pub const LEAF_LEN: usize = 1 << LEAF_BITS;
const LEAF_MASK: u64 = gh_units::widen(LEAF_LEN) - 1;

/// Directory index of the leaf holding `key`.
pub fn leaf_index(key: u64) -> u64 {
    key >> LEAF_BITS
}

/// Sparse map from `u64` keys to `T`, organized as 512-entry leaves.
#[derive(Debug, Clone)]
pub struct RadixTable<T> {
    dir: std::collections::HashMap<u64, Box<[Option<T>; 512]>>,
    len: usize,
}

impl<T> Default for RadixTable<T> {
    fn default() -> Self {
        Self {
            dir: std::collections::HashMap::new(),
            len: 0,
        }
    }
}

impl<T> RadixTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn split(key: u64) -> (u64, usize) {
        (key >> LEAF_BITS, (key & LEAF_MASK) as usize)
    }

    /// Returns the value at `key`, if present.
    pub fn get(&self, key: u64) -> Option<&T> {
        let (hi, lo) = Self::split(key);
        self.dir.get(&hi).and_then(|leaf| leaf[lo].as_ref())
    }

    /// Returns a mutable reference to the value at `key`, if present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (hi, lo) = Self::split(key);
        self.dir.get_mut(&hi).and_then(|leaf| leaf[lo].as_mut())
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        let (hi, lo) = Self::split(key);
        let leaf = self
            .dir
            .entry(hi)
            .or_insert_with(|| Box::new([const { None }; 512]));
        let old = leaf[lo].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (hi, lo) = Self::split(key);
        let leaf = self.dir.get_mut(&hi)?;
        let old = leaf[lo].take();
        if old.is_some() {
            self.len -= 1;
            if leaf.iter().all(|e| e.is_none()) {
                self.dir.remove(&hi);
            }
        }
        old
    }

    /// Borrows the leaf at directory index `idx` (see [`leaf_index`]), if
    /// allocated. The slot for key `k` is `leaf[(k & LEAF_MASK)]`.
    pub fn leaf(&self, idx: u64) -> Option<&[Option<T>; LEAF_LEN]> {
        self.dir.get(&idx).map(|b| &**b)
    }

    /// Iterates over present entries in `[lo, hi)` in ascending key order.
    ///
    /// Walks leaf-by-leaf — one directory probe per 512 keys instead of one
    /// per key — so dense leaves stream out of a contiguous array and leaves
    /// absent from the directory are skipped in O(1).
    pub fn range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, &T)> + '_ {
        let first = lo >> LEAF_BITS;
        let last = if lo >= hi {
            first
        } else {
            ((hi - 1) >> LEAF_BITS) + 1
        };
        (first..last).flat_map(move |idx| {
            let base = idx << LEAF_BITS;
            let s = lo.max(base) - base;
            let e = hi.min(base + gh_units::widen(LEAF_LEN)) - base;
            self.dir.get(&idx).into_iter().flat_map(move |leaf| {
                leaf[s as usize..e as usize]
                    .iter()
                    .enumerate()
                    .filter_map(move |(i, v)| {
                        v.as_ref().map(|v| (base + s + gh_units::widen(i), v))
                    })
            })
        })
    }

    /// Applies `f` to every present entry in `[lo, hi)` with mutable access.
    /// Leaf-wise like [`RadixTable::range`].
    pub fn for_each_in_range_mut(&mut self, lo: u64, hi: u64, mut f: impl FnMut(u64, &mut T)) {
        let mut k = lo;
        while k < hi {
            let idx = k >> LEAF_BITS;
            let base = idx << LEAF_BITS;
            let end = hi.min(base + gh_units::widen(LEAF_LEN));
            if let Some(leaf) = self.dir.get_mut(&idx) {
                for i in (k - base)..(end - base) {
                    if let Some(v) = leaf[i as usize].as_mut() {
                        f(base + i, v);
                    }
                }
            }
            k = end;
        }
    }

    /// Removes every entry in `[lo, hi)`, returning how many were removed.
    /// A fully covered leaf is dropped whole without per-key probing.
    pub fn remove_range(&mut self, lo: u64, hi: u64) -> usize {
        let mut removed: usize = 0;
        let mut k = lo;
        while k < hi {
            let idx = k >> LEAF_BITS;
            let base = idx << LEAF_BITS;
            let end = hi.min(base + gh_units::widen(LEAF_LEN));
            if k == base && end == base + gh_units::widen(LEAF_LEN) {
                if let Some(leaf) = self.dir.remove(&idx) {
                    let n = leaf.iter().filter(|e| e.is_some()).count();
                    removed = removed.saturating_add(n);
                    self.len -= n;
                }
            } else if let Some(leaf) = self.dir.get_mut(&idx) {
                for i in (k - base)..(end - base) {
                    if leaf[i as usize].take().is_some() {
                        removed = removed.saturating_add(1);
                        self.len -= 1;
                    }
                }
                if leaf.iter().all(|e| e.is_none()) {
                    self.dir.remove(&idx);
                }
            }
            k = end;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = RadixTable::new();
        assert!(t.insert(42, "a").is_none());
        assert_eq!(t.get(42), Some(&"a"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = RadixTable::new();
        t.insert(7, 1);
        assert_eq!(t.insert(7, 2), Some(1));
        assert_eq!(t.get(7), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_clears_and_shrinks_leaf() {
        let mut t = RadixTable::new();
        t.insert(1000, ());
        assert_eq!(t.remove(1000), Some(()));
        assert!(t.is_empty());
        assert!(t.dir.is_empty(), "empty leaf should be reclaimed");
    }

    #[test]
    fn keys_crossing_leaf_boundary() {
        let mut t = RadixTable::new();
        t.insert(511, 'a');
        t.insert(512, 'b');
        assert_eq!(t.get(511), Some(&'a'));
        assert_eq!(t.get(512), Some(&'b'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn range_iterates_in_order() {
        let mut t = RadixTable::new();
        for k in [5u64, 100, 600, 601, 2000] {
            t.insert(k, k * 2);
        }
        let got: Vec<_> = t.range(100, 2000).map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, vec![(100, 200), (600, 1200), (601, 1202)]);
    }

    #[test]
    fn remove_range_counts() {
        let mut t = RadixTable::new();
        for k in 0..100u64 {
            t.insert(k, ());
        }
        assert_eq!(t.remove_range(10, 20), 10);
        assert_eq!(t.len(), 90);
        assert!(t.get(15).is_none());
        assert!(t.get(20).is_some());
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut t = RadixTable::new();
        t.insert(3, 10);
        *t.get_mut(3).unwrap() += 5;
        assert_eq!(t.get(3), Some(&15));
    }

    #[test]
    fn for_each_in_range_mut_applies() {
        let mut t = RadixTable::new();
        for k in 0..10u64 {
            t.insert(k, 0u32);
        }
        t.for_each_in_range_mut(2, 8, |_, v| *v += 1);
        assert_eq!(t.get(1), Some(&0));
        assert_eq!(t.get(5), Some(&1));
        assert_eq!(t.get(8), Some(&0));
    }

    #[test]
    fn range_matches_per_key_probing() {
        let mut t = RadixTable::new();
        let keys = [0u64, 3, 511, 512, 513, 1023, 1024, 5000];
        for &k in &keys {
            t.insert(k, k);
        }
        for (lo, hi) in [(0, 6000), (1, 513), (512, 512), (513, 512), (511, 1025)] {
            let fast: Vec<_> = t.range(lo, hi).map(|(k, &v)| (k, v)).collect();
            let slow: Vec<_> = (lo..hi.max(lo))
                .filter_map(|k| t.get(k).map(|&v| (k, v)))
                .collect();
            assert_eq!(fast, slow, "range({lo},{hi})");
        }
    }

    #[test]
    fn remove_range_drops_full_leaf_whole() {
        let mut t = RadixTable::new();
        for k in 0..1536u64 {
            t.insert(k, ());
        }
        // [512, 1024) covers leaf 1 exactly; [200, 512) and [1024, 1100) are partial.
        assert_eq!(t.remove_range(200, 1100), 900);
        assert_eq!(t.len(), 1536 - 900);
        assert!(t.get(199).is_some());
        assert!(t.get(200).is_none());
        assert!(t.get(700).is_none());
        assert!(t.get(1099).is_none());
        assert!(t.get(1100).is_some());
    }

    #[test]
    fn leaf_accessor_exposes_slots() {
        let mut t = RadixTable::new();
        t.insert(513, 7u32);
        assert!(t.leaf(0).is_none());
        let leaf = t.leaf(leaf_index(513)).unwrap();
        assert_eq!(leaf[1], Some(7));
        assert_eq!(leaf[0], None);
    }

    #[test]
    fn large_sparse_key_space() {
        let mut t = RadixTable::new();
        let keys = [0u64, u32::MAX as u64, u64::MAX >> 10];
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(&i));
        }
    }
}
