//! Physical memory tiers.
//!
//! The GH200 exposes its two physical memories as NUMA nodes. The model
//! tracks capacity and usage per node at byte granularity and hands out
//! opaque frame numbers for page-table entries. Exhaustion is an explicit
//! error so callers (the UVM driver, the OS) can trigger eviction.

use gh_units::Bytes;

/// A NUMA node of the superchip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Grace CPU, LPDDR5X.
    Cpu,
    /// Hopper GPU, HBM3.
    Gpu,
}

impl Node {
    /// The other node.
    pub fn peer(self) -> Node {
        match self {
            Node::Cpu => Node::Gpu,
            Node::Gpu => Node::Cpu,
        }
    }

    fn idx(self) -> usize {
        match self {
            Node::Cpu => 0,
            Node::Gpu => 1,
        }
    }
}

/// Returned when a node cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Node that was exhausted.
    pub node: Node,
    /// Bytes requested.
    pub requested: Bytes,
    /// Bytes that were still free.
    pub free: Bytes,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory on {:?}: requested {}, {} free",
            self.node, self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Byte-granular physical memory accounting for both nodes.
#[derive(Debug, Clone)]
pub struct PhysMem {
    capacity: [Bytes; 2],
    used: [Bytes; 2],
    next_frame: u64,
    unified: bool,
}

impl PhysMem {
    /// Creates the two tiers with the given capacities. `gpu_reserved` is
    /// carved out of the GPU immediately (driver baseline).
    pub fn new(cpu_capacity: Bytes, gpu_capacity: Bytes, gpu_reserved: Bytes) -> Self {
        assert!(
            gpu_reserved <= gpu_capacity,
            "driver baseline exceeds GPU capacity"
        );
        Self {
            capacity: [cpu_capacity, gpu_capacity],
            used: [Bytes::ZERO, gpu_reserved],
            next_frame: 1,
            unified: false,
        }
    }

    /// Creates a single physical pool of `total` bytes shared by both
    /// nodes (the MI300A model). `reserved` is the driver carve-out,
    /// attributed to the GPU. Nodes become attribution labels only:
    /// per-node `used` still tracks who allocated what, but capacity and
    /// `free` are pool-wide.
    pub fn new_unified(total: Bytes, reserved: Bytes) -> Self {
        assert!(reserved <= total, "driver baseline exceeds GPU capacity");
        Self {
            capacity: [total, total],
            used: [Bytes::ZERO, reserved],
            next_frame: 1,
            unified: true,
        }
    }

    /// Whether both nodes draw from one shared physical pool.
    pub fn is_unified(&self) -> bool {
        self.unified
    }

    /// Total capacity of `node` (the pool size when unified).
    pub fn capacity(&self, node: Node) -> Bytes {
        self.capacity[node.idx()]
    }

    /// Bytes currently allocated on `node` (for the GPU this includes the
    /// driver baseline, matching what `nvidia-smi` reports). In a unified
    /// pool this is per-node *attribution* within the shared pool.
    pub fn used(&self, node: Node) -> Bytes {
        self.used[node.idx()]
    }

    /// Bytes still free on `node`. In a unified pool both nodes report the
    /// same value: whatever is left of the shared pool.
    pub fn free(&self, node: Node) -> Bytes {
        if self.unified {
            self.capacity[0] - self.used[0] - self.used[1]
        } else {
            self.capacity[node.idx()] - self.used[node.idx()]
        }
    }

    /// Reserves `bytes` on `node`, returning an opaque frame id for the
    /// reservation. Frame ids are unique across the machine's lifetime.
    pub fn alloc(&mut self, node: Node, bytes: Bytes) -> Result<u64, OutOfMemory> {
        if self.free(node) < bytes {
            return Err(OutOfMemory {
                node,
                requested: bytes,
                free: self.free(node),
            });
        }
        self.used[node.idx()] += bytes;
        let frame = self.next_frame;
        self.next_frame += 1;
        Ok(frame)
    }

    /// Releases `bytes` previously reserved on `node`.
    pub fn release(&mut self, node: Node, bytes: Bytes) {
        debug_assert!(
            self.used[node.idx()] >= bytes,
            "releasing more than allocated on {node:?}"
        );
        self.used[node.idx()] -= bytes;
    }

    /// Moves a `bytes`-sized reservation from one node to the other,
    /// returning the new frame id. Fails if the destination is full.
    pub fn migrate(&mut self, from: Node, bytes: Bytes) -> Result<u64, OutOfMemory> {
        let frame = self.alloc(from.peer(), bytes)?;
        self.release(from, bytes);
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u64) -> Bytes {
        Bytes::new(n)
    }

    fn mem() -> PhysMem {
        PhysMem::new(b(1000), b(500), b(100))
    }

    #[test]
    fn reports_capacity_and_baseline() {
        let m = mem();
        assert_eq!(m.capacity(Node::Cpu), b(1000));
        assert_eq!(m.capacity(Node::Gpu), b(500));
        assert_eq!(m.used(Node::Gpu), b(100));
        assert_eq!(m.free(Node::Gpu), b(400));
        assert_eq!(m.used(Node::Cpu), b(0));
    }

    #[test]
    fn alloc_and_release_roundtrip() {
        let mut m = mem();
        let f = m.alloc(Node::Cpu, b(300)).unwrap();
        assert!(f > 0);
        assert_eq!(m.used(Node::Cpu), b(300));
        m.release(Node::Cpu, b(300));
        assert_eq!(m.used(Node::Cpu), b(0));
    }

    #[test]
    fn frame_ids_are_unique() {
        let mut m = mem();
        let a = m.alloc(Node::Cpu, b(1)).unwrap();
        let bf = m.alloc(Node::Gpu, b(1)).unwrap();
        let c = m.alloc(Node::Cpu, b(1)).unwrap();
        assert_ne!(a, bf);
        assert_ne!(bf, c);
        assert_ne!(a, c);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = mem();
        let err = m.alloc(Node::Gpu, b(401)).unwrap_err();
        assert_eq!(err.node, Node::Gpu);
        assert_eq!(err.requested, b(401));
        assert_eq!(err.free, b(400));
        // Nothing was reserved.
        assert_eq!(m.used(Node::Gpu), b(100));
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = mem();
        m.alloc(Node::Gpu, b(400)).unwrap();
        assert_eq!(m.free(Node::Gpu), b(0));
        assert!(m.alloc(Node::Gpu, b(1)).is_err());
    }

    #[test]
    fn migrate_moves_reservation() {
        let mut m = mem();
        m.alloc(Node::Cpu, b(200)).unwrap();
        let f = m.migrate(Node::Cpu, b(200)).unwrap();
        assert!(f > 0);
        assert_eq!(m.used(Node::Cpu), b(0));
        assert_eq!(m.used(Node::Gpu), b(300));
    }

    #[test]
    fn migrate_fails_when_peer_full() {
        let mut m = mem();
        m.alloc(Node::Gpu, b(400)).unwrap();
        m.alloc(Node::Cpu, b(50)).unwrap();
        assert!(m.migrate(Node::Cpu, b(50)).is_err());
        // Source reservation untouched on failure.
        assert_eq!(m.used(Node::Cpu), b(50));
    }

    #[test]
    fn peer_is_involutive() {
        assert_eq!(Node::Cpu.peer(), Node::Gpu);
        assert_eq!(Node::Gpu.peer().peer(), Node::Gpu);
    }

    #[test]
    #[should_panic(expected = "driver baseline")]
    fn reserved_over_capacity_panics() {
        PhysMem::new(b(10), b(10), b(11));
    }

    #[test]
    fn unified_pool_shares_capacity_between_nodes() {
        let mut m = PhysMem::new_unified(b(1000), b(100));
        assert!(m.is_unified());
        assert_eq!(m.capacity(Node::Cpu), b(1000));
        assert_eq!(m.capacity(Node::Gpu), b(1000));
        assert_eq!(m.free(Node::Cpu), b(900));
        assert_eq!(m.free(Node::Gpu), b(900));
        // A CPU allocation shrinks the GPU's view of free memory too.
        m.alloc(Node::Cpu, b(300)).unwrap();
        assert_eq!(m.free(Node::Gpu), b(600));
        assert_eq!(m.free(Node::Cpu), b(600));
        // Per-node attribution is preserved.
        assert_eq!(m.used(Node::Cpu), b(300));
        assert_eq!(m.used(Node::Gpu), b(100));
    }

    #[test]
    fn unified_pool_exhausts_jointly() {
        let mut m = PhysMem::new_unified(b(1000), b(0));
        m.alloc(Node::Cpu, b(600)).unwrap();
        m.alloc(Node::Gpu, b(400)).unwrap();
        let err = m.alloc(Node::Gpu, b(1)).unwrap_err();
        assert_eq!(err.free, b(0));
        assert!(m.alloc(Node::Cpu, b(1)).is_err());
    }

    #[test]
    fn unified_pool_release_restores_shared_free() {
        let mut m = PhysMem::new_unified(b(1000), b(100));
        m.alloc(Node::Gpu, b(500)).unwrap();
        assert_eq!(m.free(Node::Cpu), b(400));
        m.release(Node::Gpu, b(500));
        assert_eq!(m.free(Node::Cpu), b(900));
        assert_eq!(m.used(Node::Gpu), b(100));
    }

    #[test]
    fn unified_pool_reserved_over_total_panics() {
        let r = std::panic::catch_unwind(|| PhysMem::new_unified(b(10), b(11)));
        assert!(r.is_err());
    }
}
