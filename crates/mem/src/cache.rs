//! Set-associative cache model.
//!
//! Used as the GPU's L2 for *irregular remote* accesses: on Grace
//! Hopper, a 128 B line fetched once over NVLink-C2C is served from L2
//! on re-touch, which is what keeps pointer-chasing workloads (BFS's
//! visited flags) viable over the link. The model is a classic
//! sets×ways LRU cache tracking presence only — the simulator keeps data
//! elsewhere; this answers "would this touch have crossed the link?".

use gh_units::{Bytes, Lines};

/// A set-associative presence cache over line addresses.
///
/// Slots live in struct-of-arrays form: a slot `i` is the triple
/// `(lines[i], stamps[i], gens[i])`, and it is *vacant* unless
/// `gens[i]` equals the cache's current generation. That layout keeps
/// the hot hit-scan inside one or two host cachelines per set, and —
/// because every array starts as all-zeroes while the live generation
/// starts at 1 — construction is a calloc, not a multi-megabyte
/// pattern fill.
///
/// ```
/// use gh_mem::SetCache;
/// use gh_units::{Bytes, Lines};
/// let mut l2 = SetCache::new(Bytes::new(64 * 1024), Bytes::new(128), 8);
/// assert!(!l2.access(0));   // miss: crosses the link
/// assert!(l2.access(64));   // hit: same 128 B line
/// assert_eq!(l2.access_range(0, Bytes::new(1024)), Lines::new(7)); // 7 new lines
/// ```
#[derive(Debug, Clone)]
pub struct SetCache {
    ways: usize,
    sets: usize,
    line_bytes: Bytes,
    /// Cached line id per slot; meaningful only when the slot's
    /// generation matches [`SetCache::gen`].
    lines: Vec<u64>,
    /// LRU stamp per slot.
    stamps: Vec<u64>,
    /// Fill generation per slot; `gens[i] != self.gen` = vacant.
    gens: Vec<u64>,
    /// Current generation (never 0, so freshly calloc'd slots are
    /// vacant); bumped by [`SetCache::reset`] to invalidate every slot
    /// in O(1).
    gen: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SetCache {
    /// Builds a cache of `capacity_bytes` with `line_bytes` lines and
    /// the given associativity. Set count rounds up to a power of two.
    pub fn new(capacity_bytes: Bytes, line_bytes: Bytes, ways: usize) -> Self {
        assert!(line_bytes.get().is_power_of_two());
        assert!(ways >= 1);
        let lines = (capacity_bytes.get() / line_bytes.get()).max(1) as usize;
        let sets = (lines / ways).next_power_of_two().max(1);
        Self {
            ways,
            sets,
            line_bytes,
            lines: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            gens: vec![0; sets * ways],
            gen: 1,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> Bytes {
        self.line_bytes
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lines evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn set_of(&self, line: u64) -> usize {
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 29) as usize) & (self.sets - 1)
    }

    /// Touches the line containing `addr`: returns `true` on hit,
    /// otherwise inserts it (evicting LRU) and returns `false`.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes.get();
        self.tick = self.tick.saturating_add(1);
        let base = self.set_of(line) * self.ways;
        let mut victim = base;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let i = base + w;
            let vacant = self.gens[i] != self.gen;
            if !vacant && self.lines[i] == line {
                self.stamps[i] = self.tick;
                self.hits = self.hits.saturating_add(1);
                return true;
            }
            if vacant {
                victim = i;
                oldest = 0;
            } else if self.stamps[i] < oldest {
                victim = i;
                oldest = self.stamps[i];
            }
        }
        self.misses = self.misses.saturating_add(1);
        if self.gens[victim] == self.gen {
            self.evictions = self.evictions.saturating_add(1);
        }
        self.lines[victim] = line;
        self.stamps[victim] = self.tick;
        self.gens[victim] = self.gen;
        false
    }

    /// Touches `[addr, addr+bytes)`; returns the number of *missed*
    /// lines (the ones that crossed the link).
    pub fn access_range(&mut self, addr: u64, bytes: Bytes) -> Lines {
        if bytes.is_zero() {
            return Lines::ZERO;
        }
        let first = addr / self.line_bytes.get();
        let last = (addr + bytes.get() - 1) / self.line_bytes.get();
        let mut missed = Lines::ZERO;
        for l in first..=last {
            if !self.access(l * self.line_bytes.get()) {
                missed += Lines::new(1);
            }
        }
        missed
    }

    /// Drops every line (kernel boundary / invalidation), keeping the
    /// hit/miss/eviction stats. O(1): bumping the generation vacates
    /// every slot without touching the slot arrays. (A u64 generation
    /// cannot wrap in any physically runnable simulation.)
    pub fn flush(&mut self) {
        self.gen = self.gen.wrapping_add(1).max(1);
    }

    /// O(1) logical flush that also zeroes the stats, leaving the cache
    /// observationally identical to a freshly built one. Lets a
    /// multi-megabyte cache model be reused across kernel launches
    /// instead of re-allocated and re-zeroed each time.
    pub fn reset(&mut self) {
        self.flush();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SetCache {
        SetCache::new(Bytes::new(64 * 1024), Bytes::new(128), 8)
    }

    #[test]
    fn capacity_is_respected() {
        let c = cache();
        assert!(c.capacity_lines() >= 512);
        assert_eq!(c.line_bytes(), Bytes::new(128));
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert!(!c.access(0));
        assert!(c.access(64)); // same 128 B line
        assert!(!c.access(128));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn range_counts_missed_lines() {
        let mut c = cache();
        assert_eq!(c.access_range(0, Bytes::new(1024)), Lines::new(8));
        assert_eq!(
            c.access_range(0, Bytes::new(1024)),
            Lines::new(0),
            "all cached now"
        );
        assert_eq!(
            c.access_range(512, Bytes::new(1024)),
            Lines::new(4),
            "half new"
        );
    }

    #[test]
    fn working_set_larger_than_capacity_evicts() {
        let mut c = SetCache::new(Bytes::new(4096), Bytes::new(128), 4); // 32 lines
        for i in 0..64u64 {
            c.access(i * 128);
        }
        assert!(c.evictions() > 0);
        // Streaming again still misses heavily.
        let h0 = c.hits();
        for i in 0..64u64 {
            c.access(i * 128);
        }
        assert!(c.hits() - h0 < 48, "mostly misses after thrash");
    }

    #[test]
    fn small_working_set_is_fully_cached() {
        let mut c = cache();
        for _ in 0..4 {
            for i in 0..100u64 {
                c.access(i * 128);
            }
        }
        assert_eq!(c.misses(), 100);
        assert_eq!(c.hits(), 300);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn flush_clears() {
        let mut c = cache();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn reset_is_equivalent_to_fresh() {
        let mut a = SetCache::new(Bytes::new(4096), Bytes::new(128), 4);
        let mut b = SetCache::new(Bytes::new(4096), Bytes::new(128), 4);
        // Dirty `a` well past capacity, then reset: every subsequent
        // access must agree with a freshly built cache, stats included.
        for i in 0..1000u64 {
            a.access(i * 128);
        }
        a.reset();
        assert_eq!(a.hits(), 0);
        assert_eq!(a.misses(), 0);
        assert_eq!(a.evictions(), 0);
        for i in (0..600u64).rev() {
            assert_eq!(a.access(i * 64), b.access(i * 64), "line {i}");
        }
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.misses(), b.misses());
        assert_eq!(a.evictions(), b.evictions());
    }

    #[test]
    fn zero_byte_range_is_free() {
        let mut c = cache();
        assert_eq!(c.access_range(1234, Bytes::new(0)), Lines::new(0));
        assert_eq!(c.misses(), 0);
    }
}
