//! GPU access-counter model (delayed automatic migration, paper §2.2.1).
//!
//! The Hopper GPU tracks remote (C2C) accesses per virtual-address region.
//! When a region's count exceeds a threshold (default 256), the GPU raises
//! a *notification* interrupt; the driver then decides whether to migrate
//! the region's pages to GPU memory. This module models the counting and
//! notification side; the migration decision lives in the driver model
//! (`gh-cuda::counters_driver`).

use std::collections::BTreeMap;

/// A notification raised when a region's access count crossed the
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notification {
    /// Region index (`vaddr / region_size`).
    pub region: u64,
    /// Counter value at the time the notification fired.
    pub count: u64,
}

/// Per-region remote-access counters with threshold notifications.
#[derive(Debug, Clone)]
pub struct AccessCounters {
    region_size: u64,
    threshold: u32,
    enabled: bool,
    /// `BTreeMap` (not `HashMap`): any future iteration — and the batched
    /// notification sweep in the kernel driver — must see deterministic
    /// region order, or notification order leaks hash-seed nondeterminism
    /// into RunReports.
    counts: BTreeMap<u64, u64>,
    /// Regions that already fired and have not been cleared; they do not
    /// fire again until cleared (mirrors the driver acking the interrupt).
    notified: BTreeMap<u64, bool>,
    total_notifications: u64,
    bus: gh_trace::Bus,
}

impl AccessCounters {
    /// Creates counters with the given tracking granularity and threshold.
    /// Observability is off until [`AccessCounters::with_obs`] injects the
    /// session's bus.
    pub fn new(region_size: u64, threshold: u32, enabled: bool) -> Self {
        assert!(region_size.is_power_of_two());
        Self {
            region_size,
            threshold,
            enabled,
            counts: BTreeMap::new(),
            notified: BTreeMap::new(),
            total_notifications: 0,
            bus: gh_trace::Bus::off(),
        }
    }

    /// Attaches the owning session's trace bus. Recording is report-only:
    /// notification decisions are bit-identical either way.
    pub fn with_obs(mut self, bus: gh_trace::Bus) -> Self {
        self.bus = bus;
        self
    }

    /// Region granularity in bytes.
    pub fn region_size(&self) -> u64 {
        self.region_size
    }

    /// Whether counting is enabled (the paper disables automatic migration
    /// for the Figure 3 overview experiments).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Region index containing `vaddr`.
    pub fn region_of(&self, vaddr: u64) -> u64 {
        vaddr / self.region_size
    }

    /// Records `n` remote accesses to `region`; returns a notification if
    /// the threshold was crossed by this batch and the region has not
    /// already fired.
    pub fn record(&mut self, region: u64, n: u64) -> Option<Notification> {
        if !self.enabled || n == 0 {
            return None;
        }
        let c = self.counts.entry(region).or_insert(0);
        *c += n;
        let fired = self.notified.entry(region).or_insert(false);
        if !*fired && *c >= u64::from(self.threshold) {
            *fired = true;
            self.total_notifications = self.total_notifications.saturating_add(1);
            if self.bus.is_on() {
                self.bus.emit(gh_trace::Event::CounterNotify {
                    va: region * self.region_size,
                });
                self.bus.count("counters.notifications", 1);
            }
            return Some(Notification { region, count: *c });
        }
        None
    }

    /// Clears a region's counter and re-arms it (driver handled the
    /// notification — typically by migrating the region).
    pub fn clear(&mut self, region: u64) {
        self.counts.remove(&region);
        self.notified.remove(&region);
    }

    /// Current count for a region.
    pub fn count(&self, region: u64) -> u64 {
        self.counts.get(&region).copied().unwrap_or(0)
    }

    /// Total notifications raised since creation.
    pub fn total_notifications(&self) -> u64 {
        self.total_notifications
    }

    /// Ages the counters: clears the counts of every region that has not
    /// fired. The real driver periodically clears/decays its counters,
    /// which is what keeps *uniformly* sparse traffic (GUPS-style) from
    /// eventually notifying on every region — only access streams dense
    /// enough to cross the threshold within one aging window migrate.
    /// The simulator ages at kernel boundaries.
    pub fn age(&mut self) {
        self.counts
            .retain(|region, _| self.notified.get(region).copied().unwrap_or(false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> AccessCounters {
        AccessCounters::new(2 * 1024 * 1024, 256, true)
    }

    #[test]
    fn below_threshold_no_notification() {
        let mut c = counters();
        assert!(c.record(0, 255).is_none());
        assert_eq!(c.count(0), 255);
    }

    #[test]
    fn crossing_threshold_fires_once() {
        let mut c = counters();
        assert!(c.record(3, 200).is_none());
        let n = c.record(3, 100).expect("threshold crossed");
        assert_eq!(n.region, 3);
        assert_eq!(n.count, 300);
        // Further accesses do not re-fire until cleared.
        assert!(c.record(3, 1000).is_none());
        assert_eq!(c.total_notifications(), 1);
    }

    #[test]
    fn clear_rearms_region() {
        let mut c = counters();
        c.record(1, 300).unwrap();
        c.clear(1);
        assert_eq!(c.count(1), 0);
        assert!(c.record(1, 256).is_some());
        assert_eq!(c.total_notifications(), 2);
    }

    #[test]
    fn disabled_counters_never_fire() {
        let mut c = AccessCounters::new(4096, 1, false);
        assert!(c.record(0, 1_000_000).is_none());
        assert_eq!(c.count(0), 0);
    }

    #[test]
    fn regions_are_independent() {
        let mut c = counters();
        c.record(0, 256).unwrap();
        assert!(c.record(1, 255).is_none());
        assert!(c.record(1, 1).is_some());
    }

    #[test]
    fn region_of_uses_region_size() {
        let c = counters();
        assert_eq!(c.region_of(0), 0);
        assert_eq!(c.region_of(2 * 1024 * 1024 - 1), 0);
        assert_eq!(c.region_of(2 * 1024 * 1024), 1);
    }

    #[test]
    fn single_exact_threshold_hit_fires() {
        let mut c = counters();
        assert!(c.record(9, 256).is_some());
    }

    #[test]
    fn age_clears_unfired_regions_only() {
        let mut c = counters();
        c.record(0, 300).unwrap(); // fired
        c.record(1, 200); // not fired
        c.age();
        assert_eq!(c.count(0), 300, "fired region keeps its state");
        assert_eq!(c.count(1), 0, "unfired region is cleared");
        // Sparse traffic never accumulates across aging windows.
        for _ in 0..10 {
            assert!(c.record(2, 100).is_none());
            c.age();
        }
        assert_eq!(c.count(2), 0);
    }
}
