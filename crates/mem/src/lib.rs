//! `gh-mem` — a discrete-cost model of the Grace Hopper memory subsystem.
//!
//! This crate models the *hardware* half of the NVIDIA GH200 Superchip as
//! described in the paper "Harnessing Integrated CPU-GPU System Memory for
//! HPC: a first look into Grace Hopper" (ICPP 2024):
//!
//! * two physical memory tiers (Grace LPDDR5X and Hopper HBM3) exposed as
//!   NUMA nodes ([`phys`]);
//! * an integrated *system-wide page table* with 4 KB or 64 KB pages plus a
//!   *GPU-exclusive page table* with 2 MB pages ([`pagetable`]);
//! * the GPU TLB and the SMMU that services Address Translation Service
//!   (ATS) requests arriving over NVLink-C2C ([`tlb`], [`smmu`]);
//! * the cache-coherent NVLink-C2C interconnect with its cacheline-grain
//!   remote access (64 B from the CPU side, 128 B from the GPU side) and
//!   bulk transfer behaviour ([`link`]);
//! * the per-region GPU *access counters* that drive delayed automatic page
//!   migration in system-allocated memory ([`counters`]);
//! * per-kernel and cumulative traffic accounting ([`traffic`]);
//! * a deterministic virtual clock in nanoseconds ([`clock`]).
//!
//! Everything is a *cost model*, not a cycle-accurate simulator: operations
//! report how long they take in virtual nanoseconds and update byte/event
//! counters. The paper's findings are driven by exactly these terms
//! (fault counts × fault cost, pages × teardown cost, bytes ÷ bandwidth),
//! which is why the model reproduces the published behaviour shapes.
//!
//! The crate is deliberately single-threaded: determinism matters more than
//! simulation wall-time, and all heavy *application* compute runs outside
//! the model through `gh-par`.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod clock;
pub mod counters;
pub mod link;
pub mod pagetable;
pub mod params;
pub mod phys;
pub mod radix;
pub mod smmu;
pub mod tlb;
pub mod traffic;

pub use cache::SetCache;
pub use clock::{Clock, Ns};
pub use counters::{AccessCounters, Notification};
pub use link::{Direction, Link};
pub use pagetable::{PageTable, Pte};
pub use params::{CostParams, ParamError, KIB, MIB};
pub use phys::{Node, OutOfMemory, PhysMem};
pub use smmu::Smmu;
pub use tlb::Tlb;
pub use traffic::{KernelTraffic, TrafficTotals};
