//! Memory oversubscription study (the paper's §7 methodology).
//!
//! ```sh
//! cargo run --release --example oversubscription
//! ```
//!
//! Uses the paper's simulated-oversubscription recipe: measure an
//! application's peak GPU usage with the built-in profiler, then install
//! a `cudaMalloc` balloon so only `peak / ratio` bytes stay free, and
//! compare the system-allocated and managed versions as the ratio grows.

use grace_mem::{platform, AppId, MemMode};

fn main() {
    let app = AppId::Hotspot;
    println!("oversubscription study: {}\n", app.name());

    // Step 1 (paper §3.2): measure peak GPU usage un-oversubscribed.
    let baseline = app.run(platform::gh200().machine(), MemMode::Managed);
    let peak = baseline.peak_gpu - platform::gh200().gpu_driver_baseline();
    println!("peak GPU usage (managed, in-memory): {} MiB\n", peak >> 20);

    println!("ratio   system_ms   managed_ms   system speedup");
    for ratio in [1.0f64, 1.25, 1.5, 2.0, 3.0] {
        let mut times = Vec::new();
        for mode in [MemMode::System, MemMode::Managed] {
            let mut m = platform::gh200().machine();
            m.oversubscribe(peak, ratio);
            let r = app.run(m, mode);
            times.push(r.reported_total() as f64 / 1e6);
        }
        println!(
            "{ratio:<7} {:<11.3} {:<12.3} {:.2}x",
            times[0],
            times[1],
            times[1] / times[0]
        );
    }
    println!();
    println!("shape (paper Fig 11): the managed version degrades with the");
    println!("ratio (eviction + re-migration churn) while the system version");
    println!("keeps reading CPU-resident pages over NVLink-C2C.");
}
