//! Timeline export: run SRAD and dump a Chrome-trace JSON of every
//! kernel, copy and migration event.
//!
//! ```sh
//! cargo run --release --example chrome_trace > srad_trace.json
//! # open chrome://tracing or https://ui.perfetto.dev and load the file
//! ```

use grace_mem::apps::srad::{self, SradParams};
use grace_mem::platform;

fn main() {
    let p = SradParams {
        size: 1024,
        iterations: 6,
        ..Default::default()
    };
    // Run once, steal the runtime's timeline before the machine closes.
    let mut m = platform::gh200().machine();
    // Inline a small slice of the app so we keep access to the runtime:
    // allocate, init, two iterations of metered kernels.
    let bytes = (p.size * p.size * 4) as u64;
    m.rt.cuda_init();
    let j = m.rt.malloc_system(gh_units::Bytes::new(bytes), "J");
    let c = m.rt.cuda_malloc_managed(gh_units::Bytes::new(bytes), "c");
    m.rt.cpu_write(&j, 0, bytes);
    for i in 0..p.iterations {
        let mut k = m.rt.launch(&format!("srad1_iter{i}"));
        k.read(&j, 0, bytes);
        k.write(&c, 0, bytes);
        k.compute((p.size * p.size * 30) as u64);
        k.finish();
        let mut k = m.rt.launch(&format!("srad2_iter{i}"));
        k.read(&c, 0, bytes);
        k.write(&j, 0, bytes);
        k.compute((p.size * p.size * 12) as u64);
        k.finish();
    }
    let json = m.rt.export_chrome_trace();
    println!("{json}");
    eprintln!(
        "{} timeline events over {:.3} ms of virtual time",
        m.rt.timeline().len(),
        m.rt.now() as f64 / 1e6
    );
    let _ = srad::reference; // keep the full app linked for doc purposes
}
