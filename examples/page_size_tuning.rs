//! System-page-size tuning (the paper's §5.2): 4 KB vs 64 KB pages.
//!
//! ```sh
//! cargo run --release --example page_size_tuning
//! ```
//!
//! Runs SRAD (system memory, access-counter migration on) under both
//! page sizes and breaks the difference down by phase — the phenomena of
//! Figures 6 and 7 side by side, plus the §5.1.2 `cudaHostRegister`
//! pre-population strategy.

use grace_mem::apps::srad::{self, SradParams};
use grace_mem::sim::KIB;
use grace_mem::{platform, Machine, MachineConfig, MemMode};

fn machine(page_4k: bool) -> Machine {
    let page = if page_4k { 4 * KIB } else { 64 * KIB };
    platform::gh200()
        .machine_cfg(&MachineConfig::with_page_size(page))
        .expect("GH200 supports both paper page sizes")
}

fn main() {
    let p = SradParams::default();
    println!(
        "SRAD {}x{} ({} iterations), system-allocated memory\n",
        p.size, p.size, p.iterations
    );

    println!("page   alloc_ms  cpu_init_ms  compute_ms  dealloc_ms  migrated_mib");
    for (page_4k, label) in [(true, "4K "), (false, "64K")] {
        let r = srad::run(machine(page_4k), MemMode::System, &p);
        println!(
            "{label}    {:<9.3} {:<12.3} {:<11.3} {:<11.3} {:.1}",
            r.phases.alloc as f64 / 1e6,
            r.phases.cpu_init as f64 / 1e6,
            r.phases.compute as f64 / 1e6,
            r.phases.dealloc as f64 / 1e6,
            r.traffic.bytes_migrated_in as f64 / (1 << 20) as f64,
        );
    }

    println!("\nwith cudaHostRegister pre-population (§5.1.2):");
    for (page_4k, label) in [(true, "4K "), (false, "64K")] {
        let mut m = machine(page_4k);
        // Pre-populate a same-sized region to model the strategy's cost.
        let bytes = (p.size * p.size * 4) as u64;
        let probe = m.rt.malloc_system(gh_units::Bytes::new(6 * bytes), "pre");
        let reg_cost = m.rt.cuda_host_register(&probe);
        m.rt.free(probe);
        let r = srad::run(m, MemMode::System, &p);
        println!(
            "{label}    register {:.3} ms  then total (reported) {:.3} ms",
            reg_cost as f64 / 1e6,
            r.reported_total() as f64 / 1e6
        );
    }

    println!("\nshapes: dealloc is ~16x cheaper with 64 KB pages (Fig 6);");
    println!("SRAD's compute profits from 64 KB pages because its working");
    println!("set migrates to HBM faster and is reused across iterations");
    println!("(Fig 7's exception); host registration trades a bulk cost");
    println!("against first-touch faults.");
}
