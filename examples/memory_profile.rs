//! Memory-utilization profiling (the paper's §3.2 tool).
//!
//! ```sh
//! cargo run --release --example memory_profile > profile.csv
//! ```
//!
//! Reproduces the Figure 4 experiment: hotspot's RSS and GPU-used series
//! over virtual time under both unified-memory strategies, as CSV ready
//! for plotting. The managed series shows the compute-phase migration
//! cliff; the system series stays CPU-resident.

use grace_mem::apps::hotspot::{self, HotspotParams};
use grace_mem::{platform, MachineConfig, MemMode};

fn main() {
    println!("mode,t_ms,rss_mib,gpu_used_mib");
    for mode in [MemMode::System, MemMode::Managed] {
        let cfg = MachineConfig {
            auto_migration: false, // Fig 4 context: migration disabled
            profiler_period: Some(50_000),
            ..Default::default()
        };
        let m = platform::gh200()
            .machine_cfg(&cfg)
            .expect("default page size is always supported");
        let r = hotspot::run(m, mode, &HotspotParams::default());
        for s in &r.samples {
            println!(
                "{},{:.3},{:.2},{:.2}",
                mode,
                s.t as f64 / 1e6,
                s.rss as f64 / (1 << 20) as f64,
                s.gpu_used as f64 / (1 << 20) as f64
            );
        }
        eprintln!(
            "{mode}: {} samples, peak rss {} MiB, peak gpu {} MiB",
            r.samples.len(),
            r.peak_rss >> 20,
            r.peak_gpu >> 20
        );
    }
}
