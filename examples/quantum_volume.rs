//! Quantum Volume on the simulated Grace Hopper — the paper's flagship
//! workload.
//!
//! ```sh
//! cargo run --release --example quantum_volume [sim_qubits]
//! ```
//!
//! Runs the same circuit under all three memory strategies and prints the
//! init/compute breakdown (Fig 9's view). With `sim_qubits = 24` (paper
//! scale: 34 qubits) the statevector exceeds GPU memory and the natural
//! oversubscription behaviours of §7 appear.

use grace_mem::{platform, run_qv, MemMode, QsimParams};

fn main() {
    let sim_qubits: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let sv_mib = gh_qsim::statevector_bytes(sim_qubits) >> 20;
    println!(
        "Quantum Volume: {sim_qubits} simulated qubits (paper scale: {} qubits), statevector {sv_mib} MiB\n",
        gh_qsim::paper_qubits(sim_qubits)
    );

    let p = QsimParams {
        sim_qubits,
        // Evolve the real statevector only when it fits comfortably.
        compute_amplitudes: sim_qubits <= 22,
        ..Default::default()
    };

    for mode in MemMode::ALL {
        let r = run_qv(platform::gh200().machine(), mode, &p);
        let init = r.kernel_time_named("qv_init");
        let gates = r.kernel_time_named("qv_gate");
        println!("== {mode} ==");
        println!(
            "  init {:.3} ms | gates {:.3} ms | total (reported) {:.3} ms",
            init as f64 / 1e6,
            gates as f64 / 1e6,
            r.reported_total() as f64 / 1e6
        );
        println!(
            "  traffic: HBM {} MiB, C2C {} MiB, ATS faults {}, GPU faults {}, migrated in/out {}/{} MiB",
            r.traffic.total_read() >> 20,
            r.traffic.c2c_read >> 20,
            r.traffic.ats_faults,
            r.traffic.gpu_faults,
            r.traffic.bytes_migrated_in >> 20,
            r.traffic.bytes_migrated_out >> 20,
        );
        if p.compute_amplitudes {
            println!("  statevector checksum: {:.6}", r.checksum);
        }
        println!("  peak GPU usage: {} MiB\n", r.peak_gpu >> 20);
    }

    if sv_mib > 96 {
        println!("(statevector exceeds the 96 MiB GPU: managed memory falls");
        println!(" back to coherent NVLink-C2C access after its thrashing");
        println!(" protection pins the allocation CPU-side — try the");
        println!(" prefetch optimization in benches/fig12_qv_throughput)");
    }
}
