//! Quickstart: the three memory-management strategies on one kernel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Allocates one buffer per strategy, initializes it on the CPU, runs a
//! GPU reduction over it, and prints where the time and the traffic went
//! — the paper's Figure 2 code transformation in ~30 lines per variant.

use grace_mem::{platform, MemMode, Phase};

const N: u64 = 32 << 20; // 32 MiB working set

fn run(mode: MemMode) {
    let mut m = platform::gh200().machine();

    m.phase(Phase::CtxInit);
    m.rt.cuda_init();

    m.phase(Phase::Alloc);
    // The explicit version needs a host/device pair and copies; the
    // unified versions need a single allocation.
    let (host, dev) = match mode {
        MemMode::Explicit => {
            let h = m.rt.malloc_system(gh_units::Bytes::new(N), "host");
            let d =
                m.rt.cuda_malloc(gh_units::Bytes::new(N), "dev")
                    .expect("fits");
            (Some(h), d)
        }
        MemMode::System => (None, m.rt.malloc_system(gh_units::Bytes::new(N), "unified")),
        MemMode::Managed => (
            None,
            m.rt.cuda_malloc_managed(gh_units::Bytes::new(N), "unified"),
        ),
    };

    m.phase(Phase::CpuInit);
    m.rt.cpu_write(host.as_ref().unwrap_or(&dev), 0, N);

    m.phase(Phase::Compute);
    if let Some(h) = &host {
        m.rt.memcpy(&dev, 0, h, 0, N); // cudaMemcpy H2D
    }
    let mut k = m.rt.launch("reduce");
    k.read(&dev, 0, N);
    k.compute(N / 2);
    let report = k.finish();

    m.phase(Phase::Dealloc);
    if let Some(h) = host {
        m.rt.free(h);
    }
    m.rt.free(dev);
    let run = m.finish();

    println!("== {mode} ==");
    println!(
        "  kernel: {:.3} ms  (HBM {} MiB, C2C {} MiB, faults {}+{}, migrated {} MiB)",
        report.time as f64 / 1e6,
        report.traffic.hbm_read >> 20,
        report.traffic.c2c_read >> 20,
        report.traffic.gpu_faults,
        report.traffic.ats_faults,
        report.traffic.bytes_migrated_in >> 20,
    );
    println!(
        "  phases: ctx {:.3} ms | alloc {:.3} ms | cpu_init {:.3} ms | compute {:.3} ms | dealloc {:.3} ms",
        run.phases.ctx_init as f64 / 1e6,
        run.phases.alloc as f64 / 1e6,
        run.phases.cpu_init as f64 / 1e6,
        run.phases.compute as f64 / 1e6,
        run.phases.dealloc as f64 / 1e6,
    );
    println!(
        "  reported total (paper convention, CPU init excluded): {:.3} ms\n",
        run.reported_total() as f64 / 1e6
    );
}

fn main() {
    println!("grace-mem quickstart: 32 MiB CPU-initialized working set\n");
    for mode in MemMode::ALL {
        run(mode);
    }
    println!("note: system memory reads remotely over NVLink-C2C without");
    println!("faults; managed memory migrates pages on first GPU access;");
    println!("the explicit version pays a cudaMemcpy up front.");
}
