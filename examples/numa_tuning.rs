//! NUMA placement tuning on the simulated GH200.
//!
//! ```sh
//! cargo run --release --example numa_tuning
//! ```
//!
//! The Grace tuning guide suggests binding allocations to the GPU NUMA
//! node (`numactl --membind`) so CPU-side initialization lands directly
//! in HBM. This example quantifies that trade-off on an iterative
//! stencil: init cost vs per-iteration compute cost, against first-touch
//! and interleaved placement.

use grace_mem::os::NumaPolicy;
use grace_mem::{platform, MachineConfig, Node};

fn main() {
    let n = 1024usize;
    let bytes = (n * n * 4) as u64;
    let iterations = 12;
    println!("iterative stencil, {n}x{n} f32, {iterations} iterations, migration off\n");
    println!("placement     init_ms   compute_ms  total_ms");

    for (name, policy) in [
        ("first_touch", NumaPolicy::FirstTouch),
        ("bind_gpu", NumaPolicy::Bind(Node::Gpu)),
        ("preferred_gpu", NumaPolicy::Preferred(Node::Gpu)),
        ("interleave", NumaPolicy::Interleave),
    ] {
        let mut m = platform::gh200()
            .machine_cfg(&MachineConfig::without_migration())
            .expect("default page size is always supported");
        m.rt.cuda_init();
        let grid =
            m.rt.malloc_system_with_policy(gh_units::Bytes::new(bytes), policy, "grid");
        let scratch =
            m.rt.cuda_malloc(gh_units::Bytes::new(bytes), "scratch")
                .unwrap();

        let t0 = m.now();
        m.rt.cpu_write(&grid, 0, bytes);
        let init = m.now() - t0;

        let t0 = m.now();
        for it in 0..iterations {
            let mut k = m.rt.launch("stencil");
            if it % 2 == 0 {
                k.read(&grid, 0, bytes);
                k.write(&scratch, 0, bytes);
            } else {
                k.read(&scratch, 0, bytes);
                k.write(&grid, 0, bytes);
            }
            k.compute((n * n * 10) as u64);
            k.finish();
        }
        let compute = m.now() - t0;

        println!(
            "{name:<13} {:<9.3} {:<11.3} {:.3}",
            init as f64 / 1e6,
            compute as f64 / 1e6,
            (init + compute) as f64 / 1e6
        );
        m.rt.free(scratch);
        m.rt.free(grid);
    }
    println!("\nbind_gpu pays the NVLink-C2C crossing once during init and");
    println!("then computes HBM-local every iteration; first-touch keeps the");
    println!("grid in LPDDR and pays the link on every pass.");
}
