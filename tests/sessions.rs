//! End-to-end tests for the session-scoped engine (PR 9): the full
//! app × platform × mode matrix runs concurrently in one process —
//! sessions are per-run, so nothing is ambient — and the result is
//! bitwise-identical to a serial sweep: reports, checksum bits, and
//! trace event streams alike. The job cache serves repeated specs
//! without re-simulating, proven through the self-profiler.

use grace_mem::{jobs, AppId, JobCache, JobSpec, MemMode, SessionOptions};
use std::sync::Arc;

/// The adversarial observability mix: tracing armed (collectors busy on
/// every worker) and the invariant sanitizer forced on.
fn observed() -> SessionOptions {
    SessionOptions {
        trace: true,
        sanitize: Some(true),
        ..Default::default()
    }
}

#[test]
fn concurrent_matrix_is_bitwise_identical_to_serial() {
    let specs = jobs::matrix(true, &observed());
    assert_eq!(
        specs.len(),
        AppId::ALL.len() * 2 * grace_mem::platform::names().len(),
        "matrix must cover every app, mode, and platform"
    );

    let serial = jobs::run_suite(&specs, 1, &Arc::new(JobCache::new()));
    let concurrent = jobs::run_suite(&specs, 8, &Arc::new(JobCache::new()));
    assert_eq!(serial.len(), concurrent.len());

    for ((spec, s), c) in specs.iter().zip(&serial).zip(&concurrent) {
        let key = spec.canonical_key();
        let s = s.as_ref().expect("serial job runs");
        let c = c.as_ref().expect("concurrent job runs");
        assert!(!s.cached && !c.cached, "{key}: fresh caches on both sides");
        assert_eq!(s.hash, c.hash, "{key}: job identity is worker-independent");
        assert_eq!(
            s.report.to_json(),
            c.report.to_json(),
            "{key}: RunReport must be bitwise-identical serial vs 8 workers"
        );
        assert_eq!(
            s.report.checksum.to_bits(),
            c.report.checksum.to_bits(),
            "{key}: checksum bits must match exactly"
        );
        let (st, ct) = (s.report.chrome_trace(), c.report.chrome_trace());
        assert!(st.is_some(), "{key}: tracing was armed, trace must exist");
        assert_eq!(st, ct, "{key}: trace event streams must be identical");
    }
}

#[test]
fn cache_hit_serves_identical_report_without_resimulating() {
    let mut spec = JobSpec::new(AppId::Hotspot, "gh200", MemMode::System);
    spec.small = true;
    // The armed profiler is the witness: a simulated run records kernel
    // spans; a cache hit simulates nothing, so there is nothing to drain.
    spec.session.perf = true;

    let cache = Arc::new(JobCache::new());
    let first = jobs::run_suite(std::slice::from_ref(&spec), 1, &cache);
    let first = first[0].as_ref().expect("job runs");
    assert!(!first.cached);
    let profile = first.perf.as_ref().expect("fresh run drains a profile");
    assert_eq!(profile.runs, 1);
    assert!(
        profile.spans.iter().any(|s| s.path.contains("kernel:")),
        "a real simulation opens kernel spans: {:?}",
        profile.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );

    let again = jobs::run_suite(std::slice::from_ref(&spec), 1, &cache);
    let again = again[0].as_ref().expect("job runs");
    assert!(again.cached, "second identical spec must hit the cache");
    assert!(
        again.perf.is_none(),
        "cache hit must not re-simulate: zero spans, no profile at all"
    );
    assert_eq!(
        first.report.to_json(),
        again.report.to_json(),
        "cached report must be bitwise-identical to the computed one"
    );
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(cache.len(), 1);
}

#[test]
fn specs_differing_only_in_trace_options_hash_differently() {
    let base = JobSpec::new(AppId::Bfs, "gh200", MemMode::Managed);
    let mut traced = base.clone();
    traced.session.trace = true;
    let mut sized = traced.clone();
    sized.session.trace_capacity = Some(1 << 12);

    // Tracing adds a section to the report, so it must be part of the
    // cache key; the capacity changes ring truncation, likewise.
    assert_ne!(base.stable_hash(), traced.stable_hash());
    assert_ne!(traced.stable_hash(), sized.stable_hash());
    assert_ne!(base.stable_hash(), sized.stable_hash());
    // Equal specs agree, across clones.
    assert_eq!(base.stable_hash(), base.clone().stable_hash());
}
