//! Cross-crate integration for the extension features: streams/events,
//! NUMA placement, trace replay, timeline export, per-buffer attribution
//! and the future-work workloads.

use grace_mem::os::NumaPolicy;
use grace_mem::{platform, Machine, MachineConfig, MemMode, Node};

fn gh200() -> Machine {
    platform::gh200().machine()
}

#[test]
fn double_buffered_pipeline_beats_serial_copies() {
    // The explicit QV pipeline at natural oversubscription must beat a
    // hypothetical serial-copy implementation; verify through the stream
    // API directly: two streams halve the end-to-end time of
    // copy+compute chains.
    let mut m = gh200();
    let h =
        m.rt.cuda_malloc_host(gh_units::Bytes::new(64 << 20), "host");
    let d0 =
        m.rt.cuda_malloc(gh_units::Bytes::new(8 << 20), "chunk0")
            .unwrap();
    let d1 =
        m.rt.cuda_malloc(gh_units::Bytes::new(8 << 20), "chunk1")
            .unwrap();
    let s0 = m.rt.create_stream();
    let s1 = m.rt.create_stream();

    // Serial: one stream, one chunk.
    let t0 = m.now();
    for i in 0..8u64 {
        m.rt.memcpy_async(&d0, 0, &h, i * (8 << 20), 8 << 20, s0);
        m.rt.launch_async("serial", s0, &[(d0, 0, 8 << 20)], &[], 200_000_000);
    }
    m.rt.all_streams_synchronize();
    let serial = m.now() - t0;

    // Pipelined: alternate chunks and streams.
    let t0 = m.now();
    for i in 0..8u64 {
        let (d, s) = if i % 2 == 0 { (&d0, s0) } else { (&d1, s1) };
        m.rt.memcpy_async(d, 0, &h, i * (8 << 20), 8 << 20, s);
        m.rt.launch_async("pipe", s, &[(*d, 0, 8 << 20)], &[], 200_000_000);
    }
    m.rt.all_streams_synchronize();
    let pipelined = m.now() - t0;

    // Copies (~22 µs each) and kernels (~22 µs each) fully overlap in
    // the pipelined version: expect ≥ 30% savings.
    assert!(
        pipelined * 10 < serial * 7,
        "pipelining must overlap copies with compute: {serial} vs {pipelined}"
    );
}

#[test]
fn numa_bound_buffer_is_hbm_local_for_kernels() {
    let mut m = gh200();
    m.rt.cuda_init();
    let b = m.rt.malloc_system_with_policy(
        gh_units::Bytes::new(8 << 20),
        NumaPolicy::Bind(Node::Gpu),
        "bound",
    );
    m.rt.cpu_write(&b, 0, 8 << 20);
    let mut k = m.rt.launch("probe");
    k.read(&b, 0, 8 << 20);
    let rep = k.finish();
    assert_eq!(rep.traffic.c2c_read, 0);
    assert_eq!(rep.traffic.hbm_read, 8 << 20);
}

#[test]
fn numa_alloc_onnode_matches_table1_row() {
    // Table 1 lists numa_alloc_onnode as a CPU allocation interface:
    // eager CPU residency, coherent remote access from the GPU.
    let mut m = gh200();
    let b =
        m.rt.numa_alloc_onnode(gh_units::Bytes::new(4 << 20), Node::Cpu, "numa_cpu");
    assert_eq!(m.rt.rss(), 4 << 20);
    let mut k = m.rt.launch("probe");
    k.read(&b, 0, 4 << 20);
    let rep = k.finish();
    assert_eq!(rep.traffic.c2c_read, 4 << 20, "coherent remote access");
    assert_eq!(rep.traffic.ats_faults, 0, "eager population: no faults");
}

#[test]
fn replay_compares_modes_on_one_trace() {
    let trace = "
alloc a system 8m
cpu_write a 0 8m
kernel sweep
  read a 0 8m
end
kernel sweep
  read a 0 8m
end
";
    let sys = grace_mem::sim::replay(
        platform::gh200()
            .machine_cfg(&MachineConfig::without_migration())
            .unwrap(),
        trace,
        Some(MemMode::System),
    )
    .unwrap();
    let man = grace_mem::sim::replay(gh200(), trace, Some(MemMode::Managed)).unwrap();
    assert_eq!(sys.traffic.c2c_read, 16 << 20, "system: remote both sweeps");
    assert_eq!(
        man.traffic.bytes_migrated_in,
        8 << 20,
        "managed: migrate once"
    );
    assert_eq!(man.traffic.hbm_read, 16 << 20);
}

#[test]
fn timeline_export_covers_the_run() {
    let mut m = gh200();
    let b =
        m.rt.cuda_malloc(gh_units::Bytes::new(4 << 20), "d")
            .unwrap();
    m.rt.cuda_memset(&b, 0, 4 << 20);
    let mut k = m.rt.launch("work");
    k.read(&b, 0, 4 << 20);
    k.finish();
    let events = m.rt.timeline();
    assert!(events.iter().any(|e| e.cat == "runtime"), "ctx init traced");
    assert!(events.iter().any(|e| e.cat == "copy"), "memset traced");
    assert!(events.iter().any(|e| e.cat == "kernel"));
    let json = m.rt.export_chrome_trace();
    assert!(json.contains("\"ph\":\"X\""));
    // Events are time-ordered and non-overlapping in virtual time per
    // category in this serial run.
    let mut last_end = 0;
    for e in events.iter() {
        assert!(e.start >= last_end || e.cat != "kernel");
        if e.cat == "kernel" {
            last_end = e.start + e.dur;
        }
    }
}

#[test]
fn event_timing_matches_clock() {
    let mut m = gh200();
    let h = m.rt.cuda_malloc_host(gh_units::Bytes::new(16 << 20), "h");
    let d =
        m.rt.cuda_malloc(gh_units::Bytes::new(16 << 20), "d")
            .unwrap();
    let s = m.rt.create_stream();
    let e0 = m.rt.event_record(s);
    m.rt.memcpy_async(&d, 0, &h, 0, 16 << 20, s);
    let e1 = m.rt.event_record(s);
    m.rt.event_synchronize(e1);
    assert!(m.rt.event_elapsed(e0, e1) > 0);
}

#[test]
fn gate_fusion_reduces_sweep_count_in_simulation() {
    use grace_mem::qsim::{fusion, Gate2, QvCircuit};
    // Construct a fusable circuit and check the fused one applies fewer
    // gates while producing the same state.
    let mut c = QvCircuit::generate(6, 11);
    let repeat: Vec<_> = c
        .gates
        .iter()
        .take(3)
        .map(|g| grace_mem::qsim::qv::QvGate {
            gate: Gate2::random_su4(500),
            q0: g.q0,
            q1: g.q1,
        })
        .collect();
    let mut gates = Vec::new();
    for (g, r) in c.gates.iter().take(3).zip(repeat) {
        gates.push(g.clone());
        gates.push(r);
    }
    c.gates = gates;
    let fused = fusion::fuse(&c);
    assert_eq!(fused.len(), 3);
    assert_eq!(c.len(), 6);
}

#[test]
fn smaps_accounts_application_buffers() {
    let mut m = gh200();
    let a = m.rt.malloc_system(gh_units::Bytes::new(4 << 20), "alpha");
    m.rt.cpu_write(&a, 0, 4 << 20);
    let _b =
        m.rt.cuda_malloc_managed(gh_units::Bytes::new(2 << 20), "beta");
    let maps = m.rt.os().smaps();
    let alpha = maps.iter().find(|e| e.tag == "alpha").unwrap();
    assert_eq!(alpha.resident_cpu, 4 << 20);
    assert_eq!(alpha.resident_gpu, 0);
    let beta = maps.iter().find(|e| e.tag == "beta").unwrap();
    assert_eq!(beta.resident_cpu + beta.resident_gpu, 0, "lazy");
}
