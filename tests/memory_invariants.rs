//! Cross-crate integration: physical-memory accounting invariants must
//! hold through entire application runs.

use grace_mem::{platform, AppId, Machine, MemMode, Node};

fn gh200() -> Machine {
    platform::gh200().machine()
}

#[test]
fn gpu_usage_never_exceeds_capacity() {
    // Run every app oversubscribed and assert from the profiler series
    // that GPU usage stayed within the physical capacity throughout.
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            let mut m = gh200();
            let cap = m.rt.params().gpu_mem_bytes;
            m.oversubscribe(4 << 20, 2.0);
            let r = app.run_small(m, mode);
            for s in &r.samples {
                assert!(
                    s.gpu_used <= cap,
                    "{}/{mode}: GPU used {} exceeds capacity {cap}",
                    app.name(),
                    s.gpu_used
                );
            }
        }
    }
}

#[test]
fn all_memory_reclaimed_after_runs() {
    for app in AppId::ALL {
        for mode in MemMode::ALL {
            let m = gh200();
            let baseline = m.rt.params().gpu_driver_baseline;
            let r = app.run_small(m, mode);
            let last = r.samples.last().expect("samples exist");
            assert_eq!(
                last.gpu_used,
                baseline,
                "{}/{mode}: GPU memory leaked",
                app.name()
            );
            assert_eq!(last.rss, 0, "{}/{mode}: CPU pages leaked", app.name());
        }
    }
}

#[test]
fn rss_and_gpu_account_for_unified_pages() {
    // A unified buffer's pages must always be accounted on exactly one
    // node: RSS + (GPU used − baseline) == touched bytes.
    let mut m = gh200();
    let baseline = m.rt.params().gpu_driver_baseline;
    let b = m.rt.malloc_system(gh_units::Bytes::new(8 << 20), "x");
    m.rt.cpu_write(&b, 0, 4 << 20); // half CPU
    let mut k = m.rt.launch("init_rest");
    k.write(&b, 4 << 20, 4 << 20); // half GPU (first touch)
    k.finish();
    assert_eq!(m.rt.rss(), 4 << 20);
    assert_eq!(m.rt.gpu_used() - baseline, 4 << 20);
    m.rt.free(b);
    assert_eq!(m.rt.rss(), 0);
    assert_eq!(m.rt.gpu_used(), baseline);
}

#[test]
fn balloon_is_fully_released() {
    let mut m = gh200();
    let free0 = m.rt.gpu_free();
    m.oversubscribe(8 << 20, 4.0);
    assert!(m.rt.gpu_free() < free0 / 2);
    m.release_balloon();
    assert_eq!(m.rt.gpu_free(), free0);
}

#[test]
fn node_peer_roundtrip() {
    assert_eq!(Node::Cpu.peer(), Node::Gpu);
}

#[test]
fn sanitizer_is_clean_across_apps_and_platforms() {
    // The invariant sanitizer (armed per-session; default-on in debug)
    // must stay silent through entire application runs on both platform
    // models, with tracing on so the link-conservation check has its
    // right-hand side.
    let so = grace_mem::SessionOptions {
        trace: true,
        sanitize: Some(true),
        ..Default::default()
    };
    for plat in ["gh200", "mi300a"] {
        for app in AppId::ALL {
            for mode in [MemMode::System, MemMode::Managed] {
                let m = platform::by_name(plat)
                    .expect("known platform")
                    .machine_session(&grace_mem::MachineConfig::default(), &so)
                    .expect("default config is valid");
                let r = app.run_small(m, mode);
                let s = r.sanitizer.expect("sanitizer was armed by the session");
                assert!(s.is_clean(), "{plat}/{}/{mode}: {s}", app.name());
                assert!(s.snapshots > 0);
            }
        }
    }
}
