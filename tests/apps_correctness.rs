//! Cross-crate integration: every application must compute identical
//! results under all three memory-management strategies and across page
//! sizes — the memory system must never change program semantics.

use grace_mem::sim::KIB;
use grace_mem::{platform, AppId, Machine, MachineConfig, MemMode};

fn gh200() -> Machine {
    platform::gh200().machine()
}

fn configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("64k+mig", MachineConfig::default()),
        ("4k+mig", MachineConfig::with_page_size(4 * KIB)),
        ("64k-nomig", MachineConfig::without_migration()),
    ]
}

#[test]
fn all_apps_agree_across_modes_and_configs() {
    for app in AppId::ALL {
        let mut checksums = Vec::new();
        for (name, cfg) in configs() {
            for mode in MemMode::ALL {
                let m = platform::gh200().machine_cfg(&cfg).unwrap();
                let r = app.run_small(m, mode);
                checksums.push((name, mode, r.checksum));
            }
        }
        let first = checksums[0].2;
        assert!(first != 0.0, "{}: checksum must be meaningful", app.name());
        for (cfg, mode, c) in &checksums {
            assert_eq!(
                *c,
                first,
                "{}: {cfg}/{mode} diverged from reference",
                app.name()
            );
        }
    }
}

#[test]
fn quantum_volume_state_is_mode_independent() {
    let p = grace_mem::QsimParams {
        sim_qubits: 10,
        seed: 99,
        compute_amplitudes: true,
        prefetch: false,
        chunk_bytes: 1 << 20,
        fuse: false,
    };
    let mut checks = Vec::new();
    for mode in MemMode::ALL {
        let r = grace_mem::run_qv(gh200(), mode, &p);
        checks.push(r.checksum);
    }
    // Also with prefetch on (managed only).
    let r = grace_mem::run_qv(
        gh200(),
        MemMode::Managed,
        &grace_mem::QsimParams {
            prefetch: true,
            ..p.clone()
        },
    );
    checks.push(r.checksum);
    assert!(checks[0] != 0.0);
    assert!(checks.iter().all(|&c| c == checks[0]), "{checks:?}");
}

#[test]
fn oversubscription_does_not_change_results() {
    for app in [AppId::Hotspot, AppId::Srad] {
        let base = app.run_small(gh200(), MemMode::Managed);
        let mut m = gh200();
        m.oversubscribe(base.peak_gpu, 2.0);
        let over = app.run_small(m, MemMode::Managed);
        assert_eq!(base.checksum, over.checksum, "{}", app.name());
        // Note: the balloon's cudaMalloc pre-pays context init, so the
        // reported totals are not directly comparable — the compute
        // phase is.
        assert!(
            over.phases.compute + over.phases.compute / 100 >= base.phases.compute,
            "{}: oversubscription can only slow compute down ({} vs {})",
            app.name(),
            over.phases.compute,
            base.phases.compute
        );
    }
}
