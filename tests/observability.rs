//! Integration tests for the observability bus (`gh-trace`): tracing
//! must never change virtual-time results, the exported metrics must
//! agree with the simulator's own ground-truth counters, and the Chrome
//! trace must be structurally sound.

use grace_mem::trace as bus;
use grace_mem::{platform, AppId, Machine, MachineConfig, MemMode, SessionOptions};

fn gh200() -> Machine {
    platform::gh200().machine()
}

fn run(app: AppId, mode: MemMode) -> grace_mem::RunReport {
    app.run_small(gh200(), mode)
}

fn traced(app: AppId, mode: MemMode) -> grace_mem::RunReport {
    let so = SessionOptions {
        trace: true,
        ..Default::default()
    };
    let m = platform::gh200()
        .machine_session(&MachineConfig::default(), &so)
        .expect("default config is valid");
    app.run_small(m, mode)
}

#[test]
fn tracing_does_not_change_virtual_time() {
    for mode in MemMode::ALL {
        let plain = run(AppId::Hotspot, mode);
        assert!(plain.trace.is_none(), "untraced run must carry no trace");

        let traced = traced(AppId::Hotspot, mode);

        assert_eq!(plain.phases, traced.phases, "{mode}: phase times differ");
        assert_eq!(plain.checksum, traced.checksum, "{mode}");
        assert_eq!(plain.kernel_times, traced.kernel_times, "{mode}");
        assert_eq!(plain.traffic, traced.traffic, "{mode}");
        assert!(traced.trace.is_some(), "traced run must carry the trace");
    }
}

#[test]
fn metrics_agree_with_ground_truth_counters() {
    for mode in MemMode::ALL {
        let r = traced(AppId::Hotspot, mode);
        let t = r.trace.as_ref().unwrap();

        // The bus's counters are recorded at the same call sites that feed
        // the simulator's own traffic accounting — they must agree exactly.
        assert_eq!(
            t.counter("os.ats_faults"),
            r.traffic.ats_faults,
            "{mode}: ATS fault counts disagree"
        );
        assert_eq!(
            t.counter("uvm.gpu_faults"),
            r.traffic.gpu_faults,
            "{mode}: GPU fault counts disagree"
        );
        assert_eq!(
            t.counter("counters.notifications"),
            r.traffic.notifications,
            "{mode}: notification counts disagree"
        );
        // Every migrated byte crossed the C2C link, so migration totals
        // are bounded by link traffic.
        let migrated_in =
            t.counter("uvm.bytes_migrated_in") + t.counter("counters.bytes_migrated_in");
        assert!(
            migrated_in <= t.counter("link.bytes_h2d"),
            "{mode}: migrated-in bytes {migrated_in} exceed H2D link bytes {}",
            t.counter("link.bytes_h2d")
        );
        assert!(
            t.counter("uvm.bytes_migrated_out") <= t.counter("link.bytes_d2h"),
            "{mode}: migrated-out bytes exceed D2H link bytes"
        );
    }
}

#[test]
fn cpu_faults_cover_touched_pages() {
    let r = traced(AppId::Hotspot, MemMode::System);
    let t = r.trace.as_ref().unwrap();
    // Hotspot's CPU init touches two grid-sized input buffers; every
    // first touch is one fault, so faults ≥ peak RSS / page size.
    let page = gh200().rt.params().system_page_size;
    let faults = t.counter("os.cpu_faults");
    assert!(faults > 0, "CPU init must fault pages in");
    assert!(
        faults >= r.peak_rss / page,
        "faults {faults} < peak RSS pages {}",
        r.peak_rss / page
    );
    // Per-fault costs were observed into the histogram.
    let h = t
        .metrics
        .histogram("fault.cost_ns")
        .expect("fault histogram");
    assert_eq!(
        h.count,
        faults + t.counter("os.ats_faults") + t.counter("uvm.gpu_faults")
    );
    assert!(h.mean() > 0.0);
}

#[test]
fn chrome_trace_is_structurally_sound() {
    let r = traced(AppId::Hotspot, MemMode::Managed);
    let json = r.chrome_trace().expect("traced run exports chrome trace");

    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.ends_with('}'), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // Kernel spans and phase spans are present.
    assert!(json.contains("\"cat\":\"kernel\""), "kernel spans missing");
    assert!(json.contains("\"cat\":\"phase\""), "phase spans missing");
    // Fault instants ride along for managed runs.
    assert!(json.contains("\"ph\":\"i\""), "instant events missing");
    assert!(
        json.contains("\"dropped_events\""),
        "overflow metadata missing"
    );
}

#[test]
fn explain_table_covers_all_phases() {
    let r = traced(AppId::Hotspot, MemMode::System);
    let text = r.explain().expect("traced run explains itself");
    for phase in ["ctx_init", "alloc", "cpu_init", "compute", "dealloc"] {
        assert!(text.contains(phase), "{phase} missing from:\n{text}");
    }
    assert!(text.contains("link%"), "link utilization column missing");
}

#[test]
fn metrics_exports_are_consistent() {
    let r = traced(AppId::Srad, MemMode::System);
    let t = r.trace.as_ref().unwrap();
    let csv = r.metrics_csv().unwrap();
    let json = r.metrics_json().unwrap();
    // Every counter appears in both dumps with its exact value.
    for (name, v) in t.metrics.counters() {
        assert!(
            csv.contains(&format!("counter,{name},value,{v}")),
            "{name} missing from CSV"
        );
        assert!(
            json.contains(&format!("\"{name}\":{v}")),
            "{name} missing from JSON"
        );
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn disabled_bus_costs_nothing_and_records_nothing() {
    let b = bus::Bus::off();
    b.emit(bus::Event::TlbEvict { va: 1 });
    b.count("x", 1);
    let d = b.take();
    assert!(d.events.is_empty() && d.metrics.is_empty());
}
