//! gh-perf quarantine: the host-side self-profiler must measure real
//! host time without perturbing a single bit of simulated output, and
//! the CLI surface around it must fail with typed exit codes.
//!
//! Note on sanitizer interplay: `cargo test` builds are debug builds, so
//! the runtime invariant sanitizer is always armed here (the same
//! machinery `GH_SANITIZE=1` forces in release builds) and its verdict
//! is part of `RunReport::to_json()` — the byte-equality assertions
//! below therefore also prove profiling does not disturb sanitized runs.

use grace_mem::{platform, AppId, MachineConfig, MemMode, RunReport, SessionOptions};

fn run(mode: MemMode) -> RunReport {
    AppId::Hotspot.run_small(platform::gh200().machine(), mode)
}

/// Session spec with the self-profiler armed.
fn perf_opts() -> SessionOptions {
    SessionOptions {
        perf: true,
        ..Default::default()
    }
}

/// Runs hotspot under an armed profiler and returns both the report and
/// the drained profile.
fn run_profiled(mode: MemMode) -> (RunReport, gh_perf::PerfData) {
    let m = platform::gh200()
        .machine_session(&MachineConfig::default(), &perf_opts())
        .expect("default config is valid");
    let perf = m.rt.session().perf.clone();
    let r = AppId::Hotspot.run_small(m, mode);
    (r, perf.take())
}

#[test]
fn profiling_does_not_change_run_reports() {
    for mode in MemMode::ALL {
        let plain = run(mode);
        let (profiled, perf) = run_profiled(mode);

        assert_eq!(
            plain.to_json(),
            profiled.to_json(),
            "{mode}: RunReport must be bitwise-identical with profiling on"
        );
        // And the profiler must have actually measured the run.
        assert!(perf.host_total_ns > 0, "{mode}: host clock must tick");
        assert!(perf.sim_total_ns > 0, "{mode}: virtual clock must tick");
        assert!(
            perf.sim_speed().is_some_and(|s| s > 0.0),
            "{mode}: sim-speed ratio must be positive"
        );
    }
}

#[test]
fn perf_data_covers_phases_spans_and_counters() {
    for p in platform::all() {
        let m = p
            .machine_session(&MachineConfig::default(), &perf_opts())
            .expect("default config is valid");
        let perf = m.rt.session().perf.clone();
        let r = AppId::Hotspot.run_small(m, MemMode::Managed);
        let perf = perf.take();

        assert!(!perf.phases.is_empty(), "{}: no phases", p.caps().name);
        assert!(
            perf.phases.iter().any(|ph| ph.host_ns > 0),
            "{}: all phase host times zero",
            p.caps().name
        );
        assert!(
            perf.phases.iter().map(|ph| ph.sim_ns).sum::<u64>() > 0,
            "{}: phases carry no virtual time",
            p.caps().name
        );
        // Kernel launches open host-time spans and bump the counter.
        assert!(!perf.spans.is_empty(), "{}: no spans", p.caps().name);
        assert!(
            perf.spans.iter().any(|s| s.path.contains("kernel:")),
            "{}: kernel spans missing: {:?}",
            p.caps().name,
            perf.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
        );
        assert_eq!(
            perf.counter("cuda.kernel_launches"),
            r.kernel_times.len() as u64,
            "{}: launch counter must match the report's kernel list",
            p.caps().name
        );
        assert!(
            perf.counter("tlb.walks") > 0,
            "{}: TLB walks must be counted",
            p.caps().name
        );
    }
}

#[test]
fn take_rearms_a_fresh_window() {
    // Two machines share one session (cloned handles reach the same
    // collector); take() between runs must leave the window re-armed.
    let session = grace_mem::SessionCtx::with_options(Default::default(), &perf_opts());
    let perf = session.perf.clone();
    let caps = platform::gh200().caps();
    let machine = || {
        grace_mem::Machine::with_session(
            // gh-audit: allow(no-platform-leak) -- sharing one session across two machines needs the raw constructor; the platform trait builds a fresh session per machine by design
            grace_mem::mem::params::CostParams::default(),
            session.clone(),
            caps,
        )
    };
    AppId::Hotspot.run_small(machine(), MemMode::System);
    let first = perf.take();
    AppId::Hotspot.run_small(machine(), MemMode::System);
    let second = perf.take();

    assert_eq!(first.runs, 1);
    assert_eq!(second.runs, 1, "take() must reset the window");
    assert!(first.sim_total_ns > 0 && second.sim_total_ns > 0);
    // Identical simulated work in both windows.
    assert_eq!(first.sim_total_ns, second.sim_total_ns);
}

#[test]
fn disabled_profiler_collects_nothing() {
    // A quiet session's perf handle stays disarmed through a full run.
    let m = platform::gh200().machine();
    let perf = m.rt.session().perf.clone();
    assert!(!perf.is_on());
    AppId::Hotspot.run_small(m, MemMode::System);
    let perf = perf.take();
    assert_eq!(perf.runs, 0);
    assert_eq!(perf.sim_total_ns, 0);
    assert!(perf.phases.is_empty());
}

// -- CLI surface: typed errors exit 2, --perf-out writes the profile --

fn bin() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_grace-mem"))
}

#[test]
fn cli_usage_and_read_errors_exit_2() {
    let usage = bin().arg("frobnicate").output().expect("spawn grace-mem");
    assert_eq!(usage.status.code(), Some(2));

    let replay = bin()
        .args(["replay", "/nonexistent/trace.txt"])
        .output()
        .expect("spawn grace-mem");
    assert_eq!(replay.status.code(), Some(2));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("cannot read"), "{err}");

    let advise = bin()
        .args(["advise", "/nonexistent/trace.txt"])
        .output()
        .expect("spawn grace-mem");
    assert_eq!(advise.status.code(), Some(2));
}

#[test]
fn cli_perf_out_writes_profile_and_keeps_stdout_deterministic() {
    let out = std::env::temp_dir().join(format!("gh-perf-cli-{}.json", std::process::id()));
    let out_s = out.to_str().expect("temp path is UTF-8");

    let plain = bin()
        .args(["app", "hotspot", "--small", "--json"])
        .output()
        .expect("spawn grace-mem");
    let profiled = bin()
        .args(["app", "hotspot", "--small", "--json", "--perf-out", out_s])
        .output()
        .expect("spawn grace-mem");
    assert!(plain.status.success() && profiled.status.success());
    assert_eq!(
        plain.stdout, profiled.stdout,
        "--perf-out must not change the deterministic report on stdout"
    );

    let json = std::fs::read_to_string(&out).expect("profile written");
    assert!(json.starts_with("{\"schema\":\"gh-perf/1\""), "{json}");
    let folded = std::fs::read_to_string(format!("{out_s}.folded")).expect("folded written");
    assert!(!folded.trim().is_empty());
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(format!("{out_s}.folded"));

    let table = String::from_utf8_lossy(&profiled.stderr);
    assert!(table.contains("-- gh-perf:"), "{table}");
    assert!(table.contains("sim-ns/host-ms"), "{table}");
}
