//! Cross-crate integration: the simulator must be bit-deterministic —
//! identical configurations produce identical virtual timelines, traffic
//! and results, regardless of host thread scheduling.

use grace_mem::{platform, AppId, Machine, MemMode, QsimParams};

fn gh200() -> Machine {
    platform::gh200().machine()
}

#[test]
fn app_runs_are_bit_deterministic() {
    for app in [AppId::Needle, AppId::Bfs, AppId::Srad] {
        for mode in MemMode::ALL {
            let a = app.run_small(gh200(), mode);
            let b = app.run_small(gh200(), mode);
            assert_eq!(a.checksum, b.checksum, "{}/{mode}", app.name());
            assert_eq!(a.phases, b.phases, "{}/{mode}", app.name());
            assert_eq!(a.traffic, b.traffic, "{}/{mode}", app.name());
            assert_eq!(a.samples, b.samples, "{}/{mode}", app.name());
            assert_eq!(a.kernel_times, b.kernel_times, "{}/{mode}", app.name());
        }
    }
}

#[test]
fn qv_timeline_is_deterministic_under_parallel_compute() {
    // The statevector math runs on the work-stealing pool; the virtual
    // timeline must not depend on scheduling.
    let p = QsimParams {
        sim_qubits: 12,
        seed: 4,
        compute_amplitudes: true,
        prefetch: false,
        chunk_bytes: 1 << 20,
        fuse: false,
    };
    let a = grace_mem::run_qv(gh200(), MemMode::Managed, &p);
    let b = grace_mem::run_qv(gh200(), MemMode::Managed, &p);
    assert_eq!(a.phases, b.phases);
    assert_eq!(a.traffic, b.traffic);
    // Float reductions over the pool are order-sensitive only across
    // different partials; the checksum uses per-thread partial sums, so
    // allow tiny wobble.
    let rel = (a.checksum - b.checksum).abs() / a.checksum.abs().max(1e-12);
    assert!(rel < 1e-9, "{} vs {}", a.checksum, b.checksum);
}

#[test]
fn different_seeds_differ() {
    let a = grace_mem::apps::bfs::run(
        gh200(),
        MemMode::System,
        &grace_mem::apps::bfs::BfsParams {
            nodes: 5000,
            degree: 4,
            seed: 1,
        },
    );
    let b = grace_mem::apps::bfs::run(
        gh200(),
        MemMode::System,
        &grace_mem::apps::bfs::BfsParams {
            nodes: 5000,
            degree: 4,
            seed: 2,
        },
    );
    assert_ne!(a.checksum, b.checksum);
}
