//! The advisor must reproduce the paper's guidance on archetypal
//! workload shapes.

use grace_mem::sim::advise;
use grace_mem::MemMode;

/// CPU-initialized, reused on the GPU: the paper's "most use cases".
const CPU_INIT_REUSE: &str = "
alloc grid system 24m
cpu_write grid 0 24m
kernel iter1
  read grid 0 24m
end
kernel iter2
  read grid 0 24m
end
kernel iter3
  read grid 0 24m
end
";

/// GPU-initialized (the Qiskit shape, §5.1.2).
const GPU_INIT: &str = "
alloc sv system 24m
kernel init
  write sv 0 24m
end
kernel gate
  read sv 0 24m
  write sv 0 24m
end
";

/// Single-pass streaming: data read exactly once.
const SINGLE_PASS: &str = "
alloc data system 32m
cpu_write data 0 32m
kernel once
  read data 0 32m
end
";

#[test]
fn cpu_init_reuse_shows_fig3_mechanisms() {
    let a = advise(CPU_INIT_REUSE).unwrap();
    // The mechanisms behind Fig 3 must be visible in the advisor's
    // evidence: the system version accesses coherently (C2C traffic, no
    // GPU faults), the managed version faults and migrates, and both
    // unified versions are within ~25% of the hand-tuned explicit
    // pipeline at 64 KiB pages — the "minimal porting effort" claim.
    let row = |mode: MemMode| {
        a.rows
            .iter()
            .find(|r| r.mode == mode && r.page_size == 65536)
            .unwrap()
    };
    let sys = row(MemMode::System);
    assert!(sys.report.traffic.c2c_read > 0);
    assert_eq!(sys.report.traffic.gpu_faults, 0);
    let man = row(MemMode::Managed);
    assert!(man.report.traffic.gpu_faults > 0);
    assert!(man.report.traffic.bytes_migrated_in > 0);
    let exp = row(MemMode::Explicit).total_ns as f64;
    assert!(sys.total_ns as f64 <= exp * 1.25, "\n{}", a.render());
    assert!(man.total_ns as f64 <= exp * 1.25, "\n{}", a.render());
}

#[test]
fn managed_beats_system_for_gpu_initialized_data() {
    let a = advise(GPU_INIT).unwrap();
    let best_unified = a.rows.iter().find(|r| r.mode != MemMode::Explicit).unwrap();
    assert_eq!(
        best_unified.mode,
        MemMode::Managed,
        "GPU-init favours managed (paper 5.1.2)\n{}",
        a.render()
    );
}

#[test]
fn page_size_guidance_appears_for_fault_bound_workloads() {
    let a = advise(GPU_INIT).unwrap();
    assert!(
        a.notes.iter().any(|n| n.contains("64 KiB")),
        "\n{}",
        a.render()
    );
}

#[test]
fn single_pass_streams_rank_all_six_configurations() {
    let a = advise(SINGLE_PASS).unwrap();
    assert_eq!(a.rows.len(), 6);
    // Totals must be positive and strictly ordered by the sort.
    assert!(a.rows.windows(2).all(|w| w[0].total_ns <= w[1].total_ns));
    assert!(a.rows[0].total_ns > 0);
}
