//! Cross-crate integration for the platform backend layer: every
//! registered platform must run every app deterministically, report
//! numerics must be platform-independent (backends change the cost
//! model, never the computed answer), and the MI300A's unified-pool
//! invariants must hold end-to-end.

use grace_mem::{platform, AppId, MachineConfig, MemMode, SessionOptions};

#[test]
fn registry_roundtrips_every_platform() {
    for name in platform::names() {
        let p = platform::by_name(name).expect("listed platform resolves");
        assert_eq!(p.caps().name, *name);
    }
    let err = platform::by_name("tpu-v9").unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("tpu-v9"), "{msg}");
    for name in platform::names() {
        assert!(msg.contains(name), "error must list {name}: {msg}");
    }
}

#[test]
fn every_app_is_deterministic_on_every_platform() {
    for p in platform::all() {
        for app in AppId::ALL {
            for mode in [MemMode::System, MemMode::Managed] {
                let a = app.run_small(p.machine(), mode);
                let b = app.run_small(p.machine(), mode);
                assert_eq!(
                    a.to_json(),
                    b.to_json(),
                    "{}/{}/{mode}: reports differ between identical runs",
                    p.caps().name,
                    app.name()
                );
                assert_eq!(a.platform, p.caps().name);
            }
        }
    }
}

#[test]
fn checksums_are_platform_independent() {
    // Platforms change where time and traffic go, never the numerics.
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            let gh = app.run_small(platform::gh200().machine(), mode);
            let mi = app.run_small(platform::mi300a().machine(), mode);
            assert_eq!(
                gh.checksum.to_bits(),
                mi.checksum.to_bits(),
                "{}/{mode}: checksum depends on the platform",
                app.name()
            );
        }
    }
}

#[test]
fn mi300a_never_migrates_pages() {
    for app in AppId::ALL {
        for mode in [MemMode::System, MemMode::Managed] {
            let r = app.run_small(platform::mi300a().machine(), mode);
            let t = &r.traffic;
            assert_eq!(t.pages_migrated_in, 0, "{}/{mode}", app.name());
            assert_eq!(t.pages_migrated_out, 0, "{}/{mode}", app.name());
            assert_eq!(t.bytes_migrated_in, 0, "{}/{mode}", app.name());
            assert_eq!(t.bytes_migrated_out, 0, "{}/{mode}", app.name());
            assert_eq!(t.notifications, 0, "{}/{mode}", app.name());
        }
    }
}

#[test]
fn mi300a_trace_shows_no_migration_machinery() {
    let so = SessionOptions {
        trace: true,
        ..Default::default()
    };
    let m = platform::mi300a()
        .machine_session(&MachineConfig::default(), &so)
        .expect("default config is valid");
    let r = AppId::Hotspot.run_small(m, MemMode::Managed);
    let t = r.trace.as_ref().expect("traced run carries the trace");
    for counter in [
        "uvm.pages_migrated_in",
        "uvm.bytes_migrated_in",
        "uvm.evictions",
        "counters.pages_migrated_in",
        "counters.notifications",
    ] {
        assert_eq!(t.counter(counter), 0, "{counter} must stay zero");
    }
}

#[test]
fn mi300a_cpu_allocations_drain_the_shared_pool() {
    // One physical pool: CPU-resident pages shrink the GPU's free view.
    let mut m = platform::mi300a().machine();
    let free0 = m.rt.gpu_free();
    let b = m.rt.malloc_system(gh_units::Bytes::new(8 << 20), "x");
    m.rt.cpu_write(&b, 0, 8 << 20);
    assert_eq!(m.rt.rss(), 8 << 20);
    assert_eq!(
        m.rt.gpu_free(),
        free0 - (8 << 20),
        "CPU pages must come out of the shared pool"
    );
    m.rt.free(b);
    assert_eq!(m.rt.gpu_free(), free0);
}

#[test]
fn mi300a_oversubscription_degrades_to_not_applicable() {
    let mut m = platform::mi300a().machine();
    let free0 = m.rt.gpu_free();
    let left = m.oversubscribe(16 << 20, 2.0);
    assert_eq!(left, free0, "no balloon may be installed");
    assert_eq!(m.rt.gpu_free(), free0);
    let r = AppId::Needle.run_small(m, MemMode::System);
    assert_eq!(r.not_applicable.len(), 1);
    assert!(
        r.not_applicable[0].contains("not applicable"),
        "{:?}",
        r.not_applicable
    );
    assert!(r.to_json().contains("\"not_applicable\":[\""));
}

#[test]
fn caps_reflect_the_hardware_contrast() {
    let gh = platform::gh200().caps();
    let mi = platform::mi300a().caps();
    assert!(gh.migration && gh.oversubscription && gh.first_touch_tiering);
    assert!(!gh.unified_pool);
    assert!(!mi.migration && !mi.oversubscription && !mi.first_touch_tiering);
    assert!(mi.unified_pool);
    // Page-size menus differ: Grace's 64 KiB granule vs x86's 2 MiB huge
    // pages — and the sweep order starts at each platform's default.
    assert_eq!(gh.page_sizes[0], gh.default_page_size);
    assert_eq!(mi.page_sizes[0], mi.default_page_size);
    assert_ne!(gh.page_sizes, mi.page_sizes);
}
