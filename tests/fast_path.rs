//! Differential tests for the batched access path: the range-batched
//! fast core and the retained per-page reference walk must produce
//! byte-identical `RunReport`s — traffic, timings, samples, counters,
//! trace, and sanitizer sections alike.
//!
//! These run in the debug/test profile, where the runtime invariant
//! sanitizer defaults ON (`gh_units::sanitizer`), so every differential
//! pair below is also a sanitizer-on differential pair.

use gh_units::Bytes;
use grace_mem::{platform, AppId, MachineConfig, MemMode, SessionOptions};

const MIB: u64 = 1 << 20;

/// Runs `app` on a fresh machine of platform `p` under session options
/// `so` and returns the full serialized report.
fn run_json(
    p: &dyn grace_mem::sim::platform::Platform,
    app: AppId,
    mode: MemMode,
    so: &SessionOptions,
) -> String {
    let m = p
        .machine_session(&MachineConfig::default(), so)
        .expect("platform default configuration is valid");
    app.run_small(m, mode).to_json()
}

/// Session spec that forces the per-page reference walk (what the
/// retired `GH_ACCESS_REF` process latch used to select).
fn reference_walk() -> SessionOptions {
    SessionOptions {
        access_ref: true,
        ..Default::default()
    }
}

#[test]
fn batched_and_reference_paths_agree_for_every_app() {
    for p in platform::all() {
        for app in AppId::ALL {
            for mode in [MemMode::System, MemMode::Managed] {
                let reference = run_json(p, app, mode, &reference_walk());
                let batched = run_json(p, app, mode, &SessionOptions::default());
                assert_eq!(
                    reference,
                    batched,
                    "{}/{}/{mode}: batched core diverged from the reference walk",
                    app.name(),
                    p.caps().name,
                );
            }
        }
    }
}

#[test]
fn batched_and_reference_paths_agree_under_tracing() {
    // Tracing is the adversarial case: the batched core must emit
    // TlbEvict / CounterNotify / PageFault events in exactly the order
    // the per-page walk does (it falls back per page for CPU-resident
    // runs when counters are armed under tracing). srad trips the
    // access-counter migration engine; needle stays fault-heavy.
    for app in [AppId::Srad, AppId::Needle] {
        for mode in [MemMode::System, MemMode::Managed] {
            let p = platform::gh200();
            let cfg = MachineConfig::default();
            let traced_ref = SessionOptions {
                trace: true,
                ..reference_walk()
            };
            let traced = SessionOptions {
                trace: true,
                ..Default::default()
            };
            let reference = app.run_small(
                p.machine_session(&cfg, &traced_ref).expect("valid config"),
                mode,
            );
            let batched = app.run_small(
                p.machine_session(&cfg, &traced).expect("valid config"),
                mode,
            );
            let ref_trace = reference.chrome_trace();
            assert!(
                ref_trace.is_some(),
                "{}/{mode}: traced run must capture a trace section",
                app.name()
            );
            assert_eq!(
                reference.to_json(),
                batched.to_json(),
                "{}/{mode}: traced batched run diverged from the reference walk",
                app.name()
            );
            assert_eq!(
                ref_trace,
                batched.chrome_trace(),
                "{}/{mode}: batched run's trace event stream diverged",
                app.name()
            );
        }
    }
}

/// Regression for the counters/UVM determinism fix: notification state
/// lives in `BTreeMap`s, so the notification *order* a kernel sequence
/// drives into a RunReport is a pure function of the access pattern.
/// With hash maps, two identical runs in one process could drain
/// regions in different orders (per-instance hasher seeds) and migrate
/// different pages under a budgeted driver.
#[test]
fn counter_notification_order_is_deterministic() {
    let run_once = || {
        let mut m = platform::gh200().machine();
        let b = m.rt.malloc_system(Bytes::new(8 * MIB), "hot");
        m.rt.cpu_write(&b, 0, 8 * MIB);
        // Re-read everything repeatedly: all four 2 MiB regions get hot
        // and fire notifications; the budgeted driver migrates them over
        // several kernels, so drain order is visible in per-kernel
        // migration traffic.
        for i in 0..6 {
            let mut k = m.rt.launch(&format!("iter{i}"));
            k.read(&b, 0, 8 * MIB);
            let rep = k.finish();
            drop(rep);
        }
        m.rt.free(b);
        m.finish()
    };
    let a = run_once();
    let b = run_once();
    assert!(
        a.traffic.notifications > 0,
        "the sequence must actually fire notifications"
    );
    assert!(
        a.traffic.bytes_migrated_in > 0,
        "the driver must actually migrate hot regions"
    );
    // Migration must be spread across kernels (budgeted drain) for the
    // order to matter at all.
    let per_kernel: Vec<u64> = a
        .kernel_history
        .iter()
        .map(|(_, t)| t.bytes_migrated_in)
        .collect();
    assert!(
        per_kernel.iter().filter(|&&x| x > 0).count() > 1,
        "migrations should land in more than one kernel: {per_kernel:?}"
    );
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "identical kernel sequences must produce byte-identical reports"
    );
}
