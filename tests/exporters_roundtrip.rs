//! Exporter roundtrip: everything the observability layer writes to disk
//! must parse back with the in-tree JSON parser and be structurally
//! sound — Chrome-trace spans well nested per track, metrics percentiles
//! ordered, and the gh-perf profile schema complete.

use gh_trace::json::Value;
use grace_mem::{platform, AppId, MachineConfig, MemMode, RunReport, SessionOptions};

fn traced_run() -> RunReport {
    let so = SessionOptions {
        trace: true,
        ..Default::default()
    };
    let m = platform::gh200()
        .machine_session(&MachineConfig::default(), &so)
        .expect("default config is valid");
    AppId::Hotspot.run_small(m, MemMode::Managed)
}

#[test]
fn chrome_trace_parses_and_spans_nest_per_track() {
    let r = traced_run();
    let t = r.trace.as_ref().expect("traced run carries the trace");
    let doc = Value::parse(&gh_trace::export::chrome_trace(t)).expect("valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event carries the Chrome trace-event required fields.
    let mut x_by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(
            e.get("name")
                .and_then(Value::as_str)
                .is_some_and(|n| !n.is_empty()),
            "event name"
        );
        let ts = e.get("ts").and_then(Value::as_f64).expect("ts");
        assert!(ts >= 0.0);
        assert_eq!(e.get("pid").and_then(Value::as_f64), Some(1.0));
        let tid = e.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        if ph == "X" {
            let dur = e.get("dur").and_then(Value::as_f64).expect("X needs dur");
            assert!(dur > 0.0, "complete events have positive duration");
            x_by_tid.entry(tid).or_default().push((ts, ts + dur));
        } else {
            assert!(e.get("args").is_some(), "instants carry their payload");
        }
    }
    assert!(!x_by_tid.is_empty(), "at least one span track");

    // Within a track, spans must be well-formed: any two either disjoint
    // or one contained in the other (EPS absorbs the 1 ns floor the
    // exporter puts under zero-length spans).
    const EPS: f64 = 0.002; // microseconds
    for (tid, spans) in &mut x_by_tid {
        spans.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(start, end) in spans.iter() {
            while stack
                .last()
                .is_some_and(|&(_, top_end)| top_end <= start + EPS)
            {
                stack.pop();
            }
            if let Some(&(top_start, top_end)) = stack.last() {
                assert!(
                    end <= top_end + EPS,
                    "tid {tid}: span [{start}, {end}] straddles [{top_start}, {top_end}]"
                );
            }
            stack.push((start, end));
        }
    }
}

#[test]
fn metrics_json_parses_with_ordered_percentiles() {
    let r = traced_run();
    let t = r.trace.as_ref().expect("trace");
    let doc = Value::parse(&gh_trace::export::metrics_json(t)).expect("valid JSON");

    let counters = doc
        .get("counters")
        .and_then(Value::as_obj)
        .expect("counters object");
    assert!(!counters.is_empty());
    for (name, v) in counters {
        assert!(!name.is_empty());
        assert!(v.as_f64().is_some_and(|x| x >= 0.0), "{name}");
    }

    let hists = doc
        .get("histograms")
        .and_then(Value::as_obj)
        .expect("histograms object");
    assert!(
        !hists.is_empty(),
        "a managed run records latency histograms"
    );
    for (name, h) in hists {
        let count = h.get("count").and_then(Value::as_f64).expect("count");
        assert!(count >= 1.0, "{name}");
        let p50 = h.get("p50").and_then(Value::as_f64).expect("p50");
        let p95 = h.get("p95").and_then(Value::as_f64).expect("p95");
        let p99 = h.get("p99").and_then(Value::as_f64).expect("p99");
        assert!(p50 <= p95 && p95 <= p99, "{name}: {p50} {p95} {p99}");
        let min = h.get("min").and_then(Value::as_f64).expect("min");
        let max = h.get("max").and_then(Value::as_f64).expect("max");
        assert!(
            (min..=max).contains(&p50) && (min..=max).contains(&p99),
            "{name}: percentiles must bracket [{min}, {max}]"
        );
        assert!(
            h.get("buckets")
                .and_then(Value::as_obj)
                .is_some_and(|b| !b.is_empty()),
            "{name}: occupied buckets"
        );
    }
}

#[test]
fn perf_json_parses_with_complete_schema() {
    let so = SessionOptions {
        perf: true,
        ..Default::default()
    };
    let m = platform::gh200()
        .machine_session(&MachineConfig::default(), &so)
        .expect("default config is valid");
    let perf = m.rt.session().perf.clone();
    let _ = AppId::Hotspot.run_small(m, MemMode::Managed);
    let perf = perf.take();
    let doc = Value::parse(&gh_perf::export::json(&perf)).expect("valid JSON");

    assert_eq!(doc.get("schema").and_then(Value::as_str), Some("gh-perf/1"));
    assert!(doc.get("host_total_ns").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(doc.get("sim_total_ns").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(
        doc.get("sim_ns_per_host_ms")
            .and_then(Value::as_f64)
            .is_some_and(|s| s > 0.0),
        "headline ratio present and positive"
    );
    assert!(doc.get("peak_rss_bytes").and_then(Value::as_f64).is_some());

    let phases = doc.get("phases").and_then(Value::as_arr).expect("phases");
    assert!(!phases.is_empty());
    for p in phases {
        assert!(p
            .get("label")
            .and_then(Value::as_str)
            .is_some_and(|l| !l.is_empty()));
        assert!(p.get("host_ns").and_then(Value::as_f64).is_some());
        assert!(p.get("sim_ns").and_then(Value::as_f64).is_some());
    }

    let spans = doc.get("spans").and_then(Value::as_arr).expect("spans");
    assert!(!spans.is_empty(), "kernel launches open spans");
    for s in spans {
        let total = s.get("total_ns").and_then(Value::as_f64).expect("total");
        let self_ns = s.get("self_ns").and_then(Value::as_f64).expect("self");
        assert!(self_ns <= total, "self time cannot exceed total");
        assert!(s
            .get("count")
            .and_then(Value::as_f64)
            .is_some_and(|c| c >= 1.0));
    }

    let counters = doc
        .get("counters")
        .and_then(Value::as_obj)
        .expect("counters");
    assert!(counters.contains_key("cuda.kernel_launches"));

    // The folded export agrees with the JSON spans: same paths, and each
    // line is `path self_ns`.
    let folded = gh_perf::export::folded(&perf);
    for line in folded.lines() {
        let (path, val) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!path.is_empty());
        assert!(val.parse::<u64>().is_ok(), "self_ns is integral: {line}");
    }
}
