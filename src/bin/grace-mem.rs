//! `grace-mem` CLI: run applications and experiments from the shell.
//!
//! ```sh
//! cargo run --release --bin grace-mem -- app hotspot --mode system --page 64k
//! cargo run --release --bin grace-mem -- qv 22 --mode managed --prefetch
//! cargo run --release --bin grace-mem -- list
//! ```

use grace_mem::sim::{KIB, MIB};
use grace_mem::{
    platform, AppId, JobCache, Machine, MachineConfig, MemMode, Platform, QsimParams,
    SessionOptions,
};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:
  grace-mem list
  grace-mem app <needle|pathfinder|bfs|hotspot|srad>
            [--platform gh200|mi300a] [--mode explicit|system|managed]
            [--page 4k|64k|2m] [--no-migration] [--oversubscribe <ratio>]
            [--small] [--trace-out <json-file>]
            [--perf] [--perf-out <json-file>]
  grace-mem qv <sim_qubits>
            [--platform gh200|mi300a] [--mode explicit|system|managed]
            [--page 4k|64k|2m] [--prefetch] [--amplitudes]
            [--trace-out <json-file>] [--perf] [--perf-out <json-file>]
  grace-mem replay <trace-file>
            [--platform gh200|mi300a] [--mode explicit|system|managed]
            [--page 4k|64k|2m] [--no-migration] [--trace-out <json-file>]
            [--perf] [--perf-out <json-file>]
  grace-mem advise <trace-file> [--platform gh200|mi300a]
  grace-mem suite [--jobs <n>] [--small]

platforms: gh200 (default; two tiers + migration), mi300a (one unified
           physical pool, no page migration). The default page size is
           the platform's own (gh200: 64k, mi300a: 4k).

suite: the full app x platform x mode matrix on the gh-jobs executor
       (--jobs <n> worker threads; 1 = serial reference). Reports are
       bitwise-identical at any worker count; cache hit/miss counts go
       to stderr.

environment (read HERE, at the CLI boundary, to seed the per-run
session — library code never reads GH_* variables):
  GH_TRACE=1       trace the run on its session bus and print the
                   per-phase explain table (implied by --trace-out)
  GH_PERF=1        profile the simulator itself (host wall-clock) and
                   print the gh-perf table on stderr (implied by
                   --perf/--perf-out); never changes simulated output
  GH_SANITIZE=0|1  force the invariant sanitizer off/on (default: on in
                   debug builds only)
  GH_ACCESS_REF=1  use the per-line reference access path instead of the
                   batched fast core (differential debugging; reports
                   are bit-identical either way)"
    );
    std::process::exit(2);
}

/// Exits with the platform layer's error message on a bad registry name,
/// unsupported page size, or invalid parameter tweak.
fn platform_fail(e: grace_mem::PlatformError) -> ! {
    eprintln!("{e}");
    std::process::exit(2);
}

/// Everything that can go wrong after argument parsing. All variants
/// render as one `grace-mem: ...` line on stderr and exit with status 2,
/// the same code as usage errors, so scripts can test a single status.
#[derive(Debug)]
enum CliError {
    /// An input file (trace to replay or advise on) could not be read.
    Read(String, std::io::Error),
    /// An output file (`--trace-out`, `--perf-out`) could not be written.
    Write(String, std::io::Error),
    /// The simulator rejected the run (malformed trace, replay error).
    Sim(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, w: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Read(path, e) => write!(w, "cannot read {path}: {e}"),
            CliError::Write(path, e) => write!(w, "cannot write {path}: {e}"),
            CliError::Sim(e) => write!(w, "{e}"),
        }
    }
}

fn fail(e: CliError) -> ! {
    eprintln!("grace-mem: {e}");
    std::process::exit(2);
}

struct Flags {
    platform: &'static dyn Platform,
    mode: MemMode,
    page: Option<u64>,
    migration: bool,
    oversubscribe: Option<f64>,
    small: bool,
    prefetch: bool,
    amplitudes: bool,
    json: bool,
    trace_out: Option<String>,
    perf: bool,
    perf_out: Option<String>,
    jobs: usize,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags {
        platform: platform::gh200(),
        mode: MemMode::System,
        page: None,
        migration: true,
        oversubscribe: None,
        small: false,
        prefetch: false,
        amplitudes: false,
        json: false,
        trace_out: None,
        perf: false,
        perf_out: None,
        jobs: 1,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--platform" => {
                let Some(name) = it.next() else { usage() };
                f.platform = platform::by_name(name).unwrap_or_else(|e| platform_fail(e));
            }
            "--mode" => {
                f.mode = match it.next().map(String::as_str) {
                    Some("explicit") => MemMode::Explicit,
                    Some("system") => MemMode::System,
                    Some("managed") => MemMode::Managed,
                    _ => usage(),
                }
            }
            "--page" => {
                f.page = match it.next().map(String::as_str) {
                    Some("4k") => Some(4 * KIB),
                    Some("64k") => Some(64 * KIB),
                    Some("2m") => Some(2 * MIB),
                    _ => usage(),
                }
            }
            "--no-migration" => f.migration = false,
            "--oversubscribe" => {
                f.oversubscribe = it.next().and_then(|s| s.parse().ok());
                if f.oversubscribe.is_none() {
                    usage();
                }
            }
            "--small" => f.small = true,
            "--json" => f.json = true,
            "--prefetch" => f.prefetch = true,
            "--amplitudes" => f.amplitudes = true,
            "--trace-out" => {
                f.trace_out = it.next().cloned();
                if f.trace_out.is_none() {
                    usage();
                }
            }
            "--jobs" => {
                f.jobs = match it.next().and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => usage(),
                }
            }
            "--perf" => f.perf = true,
            "--perf-out" => {
                f.perf_out = it.next().cloned();
                if f.perf_out.is_none() {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    f
}

fn machine(f: &Flags, so: &SessionOptions) -> Machine {
    let cfg = MachineConfig {
        page_size: f.page,
        auto_migration: f.migration,
        ..Default::default()
    };
    f.platform
        .machine_session(&cfg, so)
        .unwrap_or_else(|e| platform_fail(e))
}

fn print_report_maybe_json(label: &str, r: &grace_mem::RunReport, json: bool) {
    if json {
        println!("{}", r.to_json());
    } else {
        print_report(label, r);
    }
    report_sanitizer(r);
}

/// Surfaces invariant-sanitizer violations on stderr (see
/// `docs/units.md`). Clean runs print nothing, so sanitized stdout
/// stays bitwise-identical to an unsanitized run.
fn report_sanitizer(r: &grace_mem::RunReport) {
    let Some(s) = &r.sanitizer else { return };
    if s.is_clean() {
        return;
    }
    eprintln!("sanitizer: {s}");
    for v in &s.violations {
        eprintln!("  {v}");
    }
}

/// Reads a `GH_*` boolean env toggle: `None` when unset, `Some(false)`
/// for `""`/`"0"`, `Some(true)` otherwise. This is the *only* layer that
/// reads these variables — they seed the [`SessionOptions`] below and
/// never leak into library code (audit rule `no-ambient-state`).
fn env_flag(name: &str) -> Option<bool> {
    std::env::var(name).ok().map(|v| v != "0" && !v.is_empty())
}

/// Folds flags and boundary env vars into the run's session options.
fn session_opts(f: &Flags) -> SessionOptions {
    SessionOptions {
        trace: f.trace_out.is_some() || env_flag("GH_TRACE").unwrap_or(false),
        perf: f.perf || f.perf_out.is_some() || env_flag("GH_PERF").unwrap_or(false),
        sanitize: env_flag("GH_SANITIZE"),
        access_ref: env_flag("GH_ACCESS_REF").unwrap_or(false),
        ..Default::default()
    }
}

/// Prints the gh-perf table on stderr and writes the JSON + folded-stack
/// files for `--perf-out` (no-op when the session never armed the
/// profiler). Everything goes to stderr or side files: stdout carries
/// only the deterministic RunReport.
fn maybe_dump_perf(f: &Flags, perf: &gh_perf::Perf) {
    if !perf.is_on() {
        return;
    }
    let data = perf.take();
    eprint!("{}", gh_perf::export::table(&data));
    if let Some(out) = &f.perf_out {
        let folded = format!("{out}.folded");
        std::fs::write(out, gh_perf::export::json(&data))
            .unwrap_or_else(|e| fail(CliError::Write(out.clone(), e)));
        std::fs::write(&folded, gh_perf::export::folded(&data))
            .unwrap_or_else(|e| fail(CliError::Write(folded.clone(), e)));
        eprintln!("gh-perf profile written to {out} (folded stacks: {folded})");
    }
}

/// Writes the Chrome trace + metrics dump and prints the explain table
/// for a traced run (no-op when the run was not traced).
fn maybe_dump_trace(r: &grace_mem::RunReport, f: &Flags) {
    let Some(t) = &r.trace else { return };
    if let Some(out) = &f.trace_out {
        let metrics = format!("{out}.metrics.csv");
        std::fs::write(out, gh_trace::export::chrome_trace(t))
            .unwrap_or_else(|e| fail(CliError::Write(out.clone(), e)));
        std::fs::write(&metrics, gh_trace::export::metrics_csv(t))
            .unwrap_or_else(|e| fail(CliError::Write(metrics.clone(), e)));
        eprintln!("chrome trace written to {out} (metrics: {metrics})");
    }
    eprint!("{}", gh_trace::export::explain(t));
}

fn print_report(label: &str, r: &grace_mem::RunReport) {
    println!("== {label} [{}] ==", r.platform);
    println!(
        "phases (ms): ctx {:.3} | alloc {:.3} | cpu_init {:.3} | compute {:.3} | dealloc {:.3}",
        r.phases.ctx_init as f64 / 1e6,
        r.phases.alloc as f64 / 1e6,
        r.phases.cpu_init as f64 / 1e6,
        r.phases.compute as f64 / 1e6,
        r.phases.dealloc as f64 / 1e6,
    );
    println!(
        "reported total: {:.3} ms   checksum: {:.6}",
        r.reported_total() as f64 / 1e6,
        r.checksum
    );
    println!(
        "traffic (MiB): HBM r/w {}/{} | C2C r/w {}/{} | migrated in/out {}/{}",
        r.traffic.hbm_read >> 20,
        r.traffic.hbm_write >> 20,
        r.traffic.c2c_read >> 20,
        r.traffic.c2c_write >> 20,
        r.traffic.bytes_migrated_in >> 20,
        r.traffic.bytes_migrated_out >> 20,
    );
    println!(
        "faults: {} GPU (managed), {} ATS (system) | peak GPU {} MiB | peak RSS {} MiB",
        r.traffic.gpu_faults,
        r.traffic.ats_faults,
        r.peak_gpu >> 20,
        r.peak_rss >> 20,
    );
    for note in &r.not_applicable {
        println!("n/a: {note}");
    }
}

fn run_extension(
    name: &str,
    flag_args: &[String],
) -> Option<(grace_mem::RunReport, gh_perf::Perf)> {
    use grace_mem::apps::{kmeans, lud, micro};
    // Cheap membership check first so unknown names never boot a machine.
    if !matches!(name, "kmeans" | "lud" | "stream" | "gups" | "pointer-chase") {
        return None;
    }
    let f = parse_flags(flag_args);
    let so = session_opts(&f);
    let m = machine(&f, &so);
    let perf = m.rt.session().perf.clone();
    let mp = micro::MicroParams::default();
    let r = match name {
        "kmeans" => kmeans::run(m, f.mode, &kmeans::KmeansParams::default()),
        "lud" => lud::run(m, f.mode, &lud::LudParams::default()),
        "stream" => micro::stream(m, f.mode, &mp),
        "gups" => micro::gups(m, f.mode, &mp),
        "pointer-chase" => micro::pointer_chase(m, f.mode, &mp),
        _ => unreachable!("membership checked above"),
    };
    Some((r, perf))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("paper applications:");
            for app in AppId::ALL {
                println!("  {:<14} {}", app.name(), app.pattern());
            }
            println!(
                "  {:<14} mixed (gh-qsim, `grace-mem qv <qubits>`)",
                "qiskit-qv"
            );
            println!("extension workloads (future-work study):");
            println!("  {:<14} iterative reuse, read-only hot set", "kmeans");
            println!("  {:<14} shrinking working set", "lud");
            println!("  {:<14} sequential bandwidth", "stream");
            println!("  {:<14} uniform sparse updates", "gups");
            println!("  {:<14} skewed irregular reads", "pointer-chase");
        }
        Some("app") => {
            let Some(name) = args.get(1) else { usage() };
            // Extension workloads run through their own entry points.
            if let Some((report, perf)) = run_extension(name, &args[2..]) {
                let f = parse_flags(&args[2..]);
                print_report_maybe_json(&name.to_string(), &report, f.json);
                maybe_dump_trace(&report, &f);
                maybe_dump_perf(&f, &perf);
                return;
            }
            let Some(app) = AppId::ALL.iter().find(|a| a.name() == name) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let so = session_opts(&f);
            let mut m = machine(&f, &so);
            let perf = m.rt.session().perf.clone();
            if let Some(ratio) = f.oversubscribe {
                let peak = if f.small {
                    app.run_small(f.platform.machine(), MemMode::Managed)
                } else {
                    app.run(f.platform.machine(), MemMode::Managed)
                }
                .peak_gpu
                .saturating_sub(f.platform.gpu_driver_baseline());
                m.oversubscribe(peak, ratio);
            }
            let r = if f.small {
                app.run_small(m, f.mode)
            } else {
                app.run(m, f.mode)
            };
            print_report_maybe_json(&format!("{} ({})", app.name(), f.mode), &r, f.json);
            maybe_dump_trace(&r, &f);
            maybe_dump_perf(&f, &perf);
        }
        Some("qv") => {
            let Some(q) = args.get(1).and_then(|s| s.parse::<u32>().ok()) else {
                usage()
            };
            let f = parse_flags(&args[2..]);
            let so = session_opts(&f);
            let p = QsimParams {
                sim_qubits: q,
                compute_amplitudes: f.amplitudes,
                prefetch: f.prefetch,
                ..Default::default()
            };
            let m = machine(&f, &so);
            let perf = m.rt.session().perf.clone();
            let r = grace_mem::run_qv(m, f.mode, &p);
            print_report_maybe_json(
                &format!("qv {q} sim-qubits / paper {} ({})", q + 10, f.mode),
                &r,
                f.json,
            );
            maybe_dump_trace(&r, &f);
            maybe_dump_perf(&f, &perf);
        }
        Some("replay") => {
            let Some(path) = args.get(1) else { usage() };
            let explicit_mode = args[2..].iter().any(|a| a == "--mode");
            let f = parse_flags(&args[2..]);
            let so = session_opts(&f);
            let trace = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(CliError::Read(path.clone(), e)));
            let mode = explicit_mode.then_some(f.mode);
            let m = machine(&f, &so);
            let perf = m.rt.session().perf.clone();
            match grace_mem::sim::replay(m, &trace, mode) {
                Ok(r) => {
                    print_report_maybe_json(&format!("replay {path}"), &r, f.json);
                    // The bus captured the run as it happened — no second
                    // replay needed to export the timeline.
                    maybe_dump_trace(&r, &f);
                    maybe_dump_perf(&f, &perf);
                }
                Err(e) => fail(CliError::Sim(e.to_string())),
            }
        }
        Some("suite") => {
            let f = parse_flags(&args[1..]);
            let so = session_opts(&f);
            let specs = grace_mem::jobs::matrix(f.small, &so);
            let cache = Arc::new(JobCache::new());
            let outcomes = grace_mem::jobs::run_suite(&specs, f.jobs, &cache);
            // Deterministic stdout: one line per job, identical at any
            // worker count (CI diffs `--jobs 8` against `--jobs 1`).
            println!("app,platform,mode,total_ns,checksum_bits,job_hash");
            for (spec, out) in specs.iter().zip(outcomes) {
                let out = out.unwrap_or_else(|e| platform_fail(e));
                println!(
                    "{},{},{},{},0x{:016x},0x{:016x}",
                    spec.app.name(),
                    spec.platform,
                    spec.mode.label(),
                    out.report.reported_total(),
                    out.report.checksum.to_bits(),
                    out.hash,
                );
                report_sanitizer(&out.report);
            }
            eprintln!(
                "suite: {} jobs on {} worker(s); cache {} hit(s), {} miss(es)",
                specs.len(),
                f.jobs,
                cache.hits(),
                cache.misses(),
            );
        }
        Some("advise") => {
            let Some(path) = args.get(1) else { usage() };
            let f = parse_flags(&args[2..]);
            let trace = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(CliError::Read(path.clone(), e)));
            match grace_mem::sim::advise_on(f.platform, &trace) {
                Ok(a) => print!("{}", a.render()),
                Err(e) => fail(CliError::Sim(e.to_string())),
            }
        }
        _ => usage(),
    }
}
