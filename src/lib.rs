//! `grace-mem` — a Grace Hopper unified-memory characterization framework.
//!
//! This umbrella crate re-exports the whole workspace: a discrete-cost
//! simulator of the NVIDIA GH200's integrated CPU-GPU memory system, the
//! six-application suite of the ICPP 2024 paper *"Harnessing Integrated
//! CPU-GPU System Memory for HPC: a first look into Grace Hopper"*, and
//! the experiment harnesses that regenerate every figure of its
//! evaluation.
//!
//! Quick start:
//!
//! ```
//! use grace_mem::{platform, MemMode, Phase};
//!
//! // Boot a simulated GH200 (480 MiB + 96 MiB, 1:1024 scale). The
//! // platform registry also knows the MI300A unified-pool machine:
//! // `platform::by_name("mi300a")`.
//! let mut m = platform::gh200().machine();
//!
//! // Allocate system memory (malloc) — no CUDA context involved.
//! m.phase(Phase::Alloc);
//! let buf = m.rt.malloc_system(gh_units::Bytes::new(8 << 20), "data");
//!
//! // Initialize on the CPU (first touch places pages in LPDDR).
//! m.phase(Phase::CpuInit);
//! m.rt.cpu_write(&buf, 0, 8 << 20);
//!
//! // Launch a kernel: the GPU reads the data over NVLink-C2C.
//! m.phase(Phase::Compute);
//! let mut k = m.rt.launch("saxpy");
//! k.read(&buf, 0, 8 << 20);
//! k.compute(1 << 21);
//! let report = k.finish();
//! assert!(report.traffic.c2c_read > 0);
//!
//! m.phase(Phase::Dealloc);
//! m.rt.free(buf);
//! let run = m.finish();
//! assert!(run.phases.compute > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-figure experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

pub use gh_apps as apps;
pub use gh_cuda as cuda;
pub use gh_jobs as jobs;
pub use gh_mem as mem;
pub use gh_os as os;
pub use gh_par as par;
pub use gh_profiler as profiler;
pub use gh_qsim as qsim;
pub use gh_sim as sim;
pub use gh_trace as trace;

pub use gh_apps::AppId;
pub use gh_cuda::{SessionCtx, SessionOptions};
pub use gh_jobs::{JobCache, JobOutcome, JobSpec};
pub use gh_profiler::{Phase, Sample};
pub use gh_qsim::{run_qv, QsimParams};
pub use gh_sim::{
    platform, Buffer, Machine, MachineConfig, MemMode, Node, Platform, PlatformCaps, PlatformError,
    RunReport, Runtime,
};
